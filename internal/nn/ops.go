package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Add returns a + b (identical shapes).
func Add(a, b *Tensor) *Tensor {
	sameShape(a, b)
	data := allocFromUninit(arenaOf2(a, b), len(a.Data))
	for i := range data {
		data[i] = a.Data[i] + b.Data[i]
	}
	return result(a.Shape, data, func(out *Tensor) {
		if a.requiresGrad {
			addAcc(a.Grad, out.Grad)
		}
		if b.requiresGrad {
			addAcc(b.Grad, out.Grad)
		}
	}, a, b)
}

// Sub returns a − b.
func Sub(a, b *Tensor) *Tensor {
	sameShape(a, b)
	data := allocFromUninit(arenaOf2(a, b), len(a.Data))
	for i := range data {
		data[i] = a.Data[i] - b.Data[i]
	}
	return result(a.Shape, data, func(out *Tensor) {
		if a.requiresGrad {
			addAcc(a.Grad, out.Grad)
		}
		if b.requiresGrad {
			for i, g := range out.Grad {
				b.Grad[i] -= g
			}
		}
	}, a, b)
}

// Mul returns the elementwise product a ⊙ b.
func Mul(a, b *Tensor) *Tensor {
	sameShape(a, b)
	data := allocFromUninit(arenaOf2(a, b), len(a.Data))
	for i := range data {
		data[i] = a.Data[i] * b.Data[i]
	}
	return result(a.Shape, data, func(out *Tensor) {
		if a.requiresGrad {
			for i, g := range out.Grad {
				a.Grad[i] += g * b.Data[i]
			}
		}
		if b.requiresGrad {
			for i, g := range out.Grad {
				b.Grad[i] += g * a.Data[i]
			}
		}
	}, a, b)
}

// Scale returns s·a.
func Scale(a *Tensor, s float64) *Tensor {
	data := allocFromUninit(arenaOf(a), len(a.Data))
	for i := range data {
		data[i] = a.Data[i] * s
	}
	return result(a.Shape, data, func(out *Tensor) {
		if a.requiresGrad {
			for i, g := range out.Grad {
				a.Grad[i] += g * s
			}
		}
	}, a)
}

// AddBias adds a vector bias (length = last dim) to every row of a.
func AddBias(a, bias *Tensor) *Tensor {
	d := a.Dim(-1)
	if len(bias.Shape) != 1 || bias.Shape[0] != d {
		panic(fmt.Sprintf("nn: bias shape %v for input %v", bias.Shape, a.Shape))
	}
	data := allocFromUninit(arenaOf(a), len(a.Data))
	for i := range data {
		data[i] = a.Data[i] + bias.Data[i%d]
	}
	return result(a.Shape, data, func(out *Tensor) {
		if a.requiresGrad {
			addAcc(a.Grad, out.Grad)
		}
		if bias.requiresGrad {
			for i, g := range out.Grad {
				bias.Grad[i%d] += g
			}
		}
	}, a, bias)
}

// MatMul returns the batched matrix product. a has shape [..., m, k]; b has
// shape [k, n] (shared weights) or the same leading batch dims as a with
// shape [..., k, n].
func MatMul(a, b *Tensor) *Tensor {
	if len(a.Shape) < 2 || len(b.Shape) < 2 {
		panic("nn: MatMul needs at least 2-D operands")
	}
	m, k := a.Dim(-2), a.Dim(-1)
	var n int
	shared := len(b.Shape) == 2
	if shared {
		if b.Shape[0] != k {
			panic(fmt.Sprintf("nn: MatMul inner dims %v x %v", a.Shape, b.Shape))
		}
		n = b.Shape[1]
	} else {
		if len(b.Shape) != len(a.Shape) || b.Dim(-2) != k {
			panic(fmt.Sprintf("nn: MatMul shapes %v x %v", a.Shape, b.Shape))
		}
		for i := 0; i < len(a.Shape)-2; i++ {
			if a.Shape[i] != b.Shape[i] {
				panic(fmt.Sprintf("nn: MatMul batch dims %v x %v", a.Shape, b.Shape))
			}
		}
		n = b.Dim(-1)
	}
	batch := Numel(a.Shape[:len(a.Shape)-2])
	outShape := append(append([]int(nil), a.Shape[:len(a.Shape)-2]...), m, n)
	data := allocFrom(arenaOf2(a, b), batch*m*n)
	if shared {
		// One weight matrix for every batch entry: collapse the batch into
		// the row dimension so the blocked kernel sees one tall matmul.
		matmulFwd(data, a.Data, b.Data, batch*m, k, n)
	} else {
		for t := 0; t < batch; t++ {
			matmulFwd(data[t*m*n:(t+1)*m*n], a.Data[t*m*k:(t+1)*m*k], b.Data[t*k*n:(t+1)*k*n], m, k, n)
		}
	}
	return result(outShape, data, func(out *Tensor) {
		if a.requiresGrad {
			// dA = dOut · Bᵀ
			if refKernels.Load() {
				for t := 0; t < batch; t++ {
					bo := 0
					if !shared {
						bo = t * k * n
					}
					matmulBwdARef(a.Grad[t*m*k:(t+1)*m*k], out.Grad[t*m*n:(t+1)*m*n],
						b.Data[bo:bo+k*n], m, k, n)
				}
			} else {
				bt := allocFromUninit(out.arena, k*n)
				if shared {
					packTranspose(bt, b.Data, k, n)
					matmulBwdAPacked(a.Grad, out.Grad, bt, batch*m, k, n)
				} else {
					for t := 0; t < batch; t++ {
						packTranspose(bt, b.Data[t*k*n:(t+1)*k*n], k, n)
						matmulBwdAPacked(a.Grad[t*m*k:(t+1)*m*k], out.Grad[t*m*n:(t+1)*m*n],
							bt, m, k, n)
					}
				}
			}
		}
		if b.requiresGrad {
			// dB = Aᵀ · dOut
			if shared {
				matmulBwdB(b.Grad, a.Data, out.Grad, batch*m, k, n)
			} else {
				for t := 0; t < batch; t++ {
					matmulBwdB(b.Grad[t*k*n:(t+1)*k*n], a.Data[t*m*k:(t+1)*m*k],
						out.Grad[t*m*n:(t+1)*m*n], m, k, n)
				}
			}
		}
	}, a, b)
}

// Transpose swaps the last two dimensions.
func Transpose(a *Tensor) *Tensor {
	if len(a.Shape) < 2 {
		panic("nn: Transpose needs at least 2-D input")
	}
	m, n := a.Dim(-2), a.Dim(-1)
	batch := Numel(a.Shape[:len(a.Shape)-2])
	outShape := append(append([]int(nil), a.Shape[:len(a.Shape)-2]...), n, m)
	data := allocFromUninit(arenaOf(a), len(a.Data))
	for t := 0; t < batch; t++ {
		base := t * m * n
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				data[base+j*m+i] = a.Data[base+i*n+j]
			}
		}
	}
	return result(outShape, data, func(out *Tensor) {
		if !a.requiresGrad {
			return
		}
		for t := 0; t < batch; t++ {
			base := t * m * n
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					a.Grad[base+i*n+j] += out.Grad[base+j*m+i]
				}
			}
		}
	}, a)
}

// Reshape returns a view-copy of a with a new shape of equal element count.
func Reshape(a *Tensor, shape ...int) *Tensor {
	if Numel(shape) != len(a.Data) {
		panic(fmt.Sprintf("nn: reshape %v to %v", a.Shape, shape))
	}
	data := allocFromUninit(arenaOf(a), len(a.Data))
	copy(data, a.Data)
	return result(shape, data, func(out *Tensor) {
		if a.requiresGrad {
			addAcc(a.Grad, out.Grad)
		}
	}, a)
}

// Concat concatenates tensors along the given axis (all other dims equal).
func Concat(axis int, ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("nn: Concat of nothing")
	}
	if len(ts) == 1 {
		return ts[0]
	}
	nd := len(ts[0].Shape)
	if axis < 0 {
		axis += nd
	}
	outShape := append([]int(nil), ts[0].Shape...)
	total := 0
	for _, t := range ts {
		if len(t.Shape) != nd {
			panic("nn: Concat rank mismatch")
		}
		for d := 0; d < nd; d++ {
			if d != axis && t.Shape[d] != outShape[d] {
				panic(fmt.Sprintf("nn: Concat shape mismatch %v vs %v", t.Shape, outShape))
			}
		}
		total += t.Shape[axis]
	}
	outShape[axis] = total
	outer := Numel(outShape[:axis])
	inner := Numel(outShape[axis+1:])
	data := allocFromUninit(arenaOf(ts[0]), Numel(outShape))
	offsets := make([]int, len(ts))
	off := 0
	for i, t := range ts {
		offsets[i] = off
		off += t.Shape[axis]
	}
	for ti, t := range ts {
		sz := t.Shape[axis]
		for o := 0; o < outer; o++ {
			src := o * sz * inner
			dst := (o*total + offsets[ti]) * inner
			copy(data[dst:dst+sz*inner], t.Data[src:src+sz*inner])
		}
	}
	parents := append([]*Tensor(nil), ts...)
	return result(outShape, data, func(out *Tensor) {
		for ti, t := range parents {
			if !t.requiresGrad {
				continue
			}
			sz := t.Shape[axis]
			for o := 0; o < outer; o++ {
				src := o * sz * inner
				dst := (o*total + offsets[ti]) * inner
				addAcc(t.Grad[src:src+sz*inner], out.Grad[dst:dst+sz*inner])
			}
		}
	}, parents...)
}

// Narrow slices length elements starting at start along the given axis.
func Narrow(a *Tensor, axis, start, length int) *Tensor {
	nd := len(a.Shape)
	if axis < 0 {
		axis += nd
	}
	if start < 0 || length <= 0 || start+length > a.Shape[axis] {
		panic(fmt.Sprintf("nn: Narrow [%d:%d) on axis %d of %v", start, start+length, axis, a.Shape))
	}
	outShape := append([]int(nil), a.Shape...)
	outShape[axis] = length
	outer := Numel(a.Shape[:axis])
	inner := Numel(a.Shape[axis+1:])
	full := a.Shape[axis]
	data := allocFromUninit(arenaOf(a), Numel(outShape))
	for o := 0; o < outer; o++ {
		src := (o*full + start) * inner
		dst := o * length * inner
		copy(data[dst:dst+length*inner], a.Data[src:src+length*inner])
	}
	return result(outShape, data, func(out *Tensor) {
		if !a.requiresGrad {
			return
		}
		for o := 0; o < outer; o++ {
			src := (o*full + start) * inner
			dst := o * length * inner
			addAcc(a.Grad[src:src+length*inner], out.Grad[dst:dst+length*inner])
		}
	}, a)
}

// ReLU applies max(0, x) elementwise.
func ReLU(a *Tensor) *Tensor {
	data := allocFrom(arenaOf(a), len(a.Data))
	for i, v := range a.Data {
		if v > 0 {
			data[i] = v
		}
	}
	return result(a.Shape, data, func(out *Tensor) {
		if !a.requiresGrad {
			return
		}
		for i, g := range out.Grad {
			if a.Data[i] > 0 {
				a.Grad[i] += g
			}
		}
	}, a)
}

// GELU applies the Gaussian error linear unit (tanh approximation).
func GELU(a *Tensor) *Tensor {
	const c = 0.7978845608028654 // sqrt(2/pi)
	data := allocFromUninit(arenaOf(a), len(a.Data))
	for i, x := range a.Data {
		data[i] = 0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x)))
	}
	return result(a.Shape, data, func(out *Tensor) {
		if !a.requiresGrad {
			return
		}
		for i, g := range out.Grad {
			x := a.Data[i]
			t := math.Tanh(c * (x + 0.044715*x*x*x))
			dt := (1 - t*t) * c * (1 + 3*0.044715*x*x)
			a.Grad[i] += g * (0.5*(1+t) + 0.5*x*dt)
		}
	}, a)
}

// Sigmoid applies 1/(1+e^-x) elementwise.
func Sigmoid(a *Tensor) *Tensor {
	data := allocFromUninit(arenaOf(a), len(a.Data))
	for i, v := range a.Data {
		data[i] = 1 / (1 + math.Exp(-v))
	}
	return result(a.Shape, data, func(out *Tensor) {
		if !a.requiresGrad {
			return
		}
		for i, g := range out.Grad {
			s := out.Data[i]
			a.Grad[i] += g * s * (1 - s)
		}
	}, a)
}

// Tanh applies tanh elementwise.
func Tanh(a *Tensor) *Tensor {
	data := allocFromUninit(arenaOf(a), len(a.Data))
	for i, v := range a.Data {
		data[i] = math.Tanh(v)
	}
	return result(a.Shape, data, func(out *Tensor) {
		if !a.requiresGrad {
			return
		}
		for i, g := range out.Grad {
			t := out.Data[i]
			a.Grad[i] += g * (1 - t*t)
		}
	}, a)
}

// Softmax applies a numerically stable softmax over the last dimension.
func Softmax(a *Tensor) *Tensor {
	d := a.Dim(-1)
	rows := len(a.Data) / d
	data := allocFromUninit(arenaOf(a), len(a.Data))
	for r := 0; r < rows; r++ {
		row := a.Data[r*d : (r+1)*d]
		maxV := row[0]
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		o := data[r*d : (r+1)*d]
		for i, v := range row {
			o[i] = math.Exp(v - maxV)
			sum += o[i]
		}
		for i := range o {
			o[i] /= sum
		}
	}
	return result(a.Shape, data, func(out *Tensor) {
		if !a.requiresGrad {
			return
		}
		for r := 0; r < rows; r++ {
			o := out.Data[r*d : (r+1)*d]
			g := out.Grad[r*d : (r+1)*d]
			var dot float64
			for i := range o {
				dot += o[i] * g[i]
			}
			ag := a.Grad[r*d : (r+1)*d]
			for i := range o {
				ag[i] += o[i] * (g[i] - dot)
			}
		}
	}, a)
}

// LayerNorm normalises the last dimension to zero mean and unit variance
// and applies learnable gain and bias (each of length = last dim).
func LayerNorm(a, gain, bias *Tensor, eps float64) *Tensor {
	d := a.Dim(-1)
	if gain.Shape[0] != d || bias.Shape[0] != d {
		panic("nn: LayerNorm parameter shapes")
	}
	rows := len(a.Data) / d
	ar := arenaOf(a)
	data := allocFromUninit(ar, len(a.Data))
	norm := allocFromUninit(ar, len(a.Data)) // cached normalised values
	invStd := allocFromUninit(ar, rows)
	for r := 0; r < rows; r++ {
		row := a.Data[r*d : (r+1)*d]
		var m float64
		for _, v := range row {
			m += v
		}
		m /= float64(d)
		var v float64
		for _, x := range row {
			v += (x - m) * (x - m)
		}
		v /= float64(d)
		is := 1 / math.Sqrt(v+eps)
		invStd[r] = is
		for i, x := range row {
			nv := (x - m) * is
			norm[r*d+i] = nv
			data[r*d+i] = nv*gain.Data[i] + bias.Data[i]
		}
	}
	return result(a.Shape, data, func(out *Tensor) {
		// Fused backward: one pass per row covers the gain, bias, and input
		// gradients, with a single scratch buffer shared by all rows
		// (previously a fresh gy slice was allocated per row).
		var gy []float64
		if a.requiresGrad {
			gy = allocFromUninit(out.arena, d)
		}
		for r := 0; r < rows; r++ {
			g := out.Grad[r*d : (r+1)*d]
			nv := norm[r*d : (r+1)*d]
			if gain.requiresGrad {
				for i := range g {
					gain.Grad[i] += g[i] * nv[i]
				}
			}
			if bias.requiresGrad {
				addAcc(bias.Grad, g)
			}
			if a.requiresGrad {
				// dL/dx = invStd/d · (d·gy − Σgy − n·Σ(gy·n)), gy = g·gain
				var sumGy, sumGyN float64
				for i := range g {
					gy[i] = g[i] * gain.Data[i]
					sumGy += gy[i]
					sumGyN += gy[i] * nv[i]
				}
				is := invStd[r]
				ag := a.Grad[r*d : (r+1)*d]
				for i := range gy {
					ag[i] += is / float64(d) * (float64(d)*gy[i] - sumGy - nv[i]*sumGyN)
				}
			}
		}
	}, a, gain, bias)
}

// Dropout zeros elements with probability p during training and rescales
// the survivors by 1/(1−p); in evaluation mode it is the identity.
func Dropout(a *Tensor, p float64, rng *rand.Rand, train bool) *Tensor {
	if !train || p <= 0 {
		return a
	}
	if p >= 1 {
		panic("nn: dropout probability must be < 1")
	}
	keep := 1 - p
	ar := arenaOf(a)
	mask := allocFrom(ar, len(a.Data))
	data := allocFromUninit(ar, len(a.Data))
	for i := range mask {
		if rng.Float64() < keep {
			mask[i] = 1 / keep
		}
		data[i] = a.Data[i] * mask[i]
	}
	return result(a.Shape, data, func(out *Tensor) {
		if !a.requiresGrad {
			return
		}
		for i, g := range out.Grad {
			a.Grad[i] += g * mask[i]
		}
	}, a)
}

// Mean returns the scalar mean of all elements.
func Mean(a *Tensor) *Tensor {
	var s float64
	for _, v := range a.Data {
		s += v
	}
	n := float64(len(a.Data))
	return result([]int{1}, []float64{s / n}, func(out *Tensor) {
		if !a.requiresGrad {
			return
		}
		g := out.Grad[0] / n
		for i := range a.Grad {
			a.Grad[i] += g
		}
	}, a)
}

// MSE returns the scalar mean squared error between pred and target
// (target is treated as a constant).
func MSE(pred, target *Tensor) *Tensor {
	sameShape(pred, target)
	var s float64
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		s += d * d
	}
	n := float64(len(pred.Data))
	return result([]int{1}, []float64{s / n}, func(out *Tensor) {
		if !pred.requiresGrad {
			return
		}
		g := out.Grad[0] * 2 / n
		for i := range pred.Data {
			pred.Grad[i] += g * (pred.Data[i] - target.Data[i])
		}
	}, pred)
}

// MaskedFill sets positions where mask != 0 to value (mask is constant).
// The mask must have the same shape as a.
func MaskedFill(a, mask *Tensor, value float64) *Tensor {
	sameShape(a, mask)
	data := allocFromUninit(arenaOf(a), len(a.Data))
	for i, v := range a.Data {
		if mask.Data[i] != 0 {
			data[i] = value
		} else {
			data[i] = v
		}
	}
	return result(a.Shape, data, func(out *Tensor) {
		if !a.requiresGrad {
			return
		}
		for i, g := range out.Grad {
			if mask.Data[i] == 0 {
				a.Grad[i] += g
			}
		}
	}, a)
}
