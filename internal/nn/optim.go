package nn

import "math"

// Adam implements the Adam optimizer (Kingma & Ba 2015) with L2 weight
// decay, the optimizer and regularisation the paper uses for all deep
// models (lr 1e-3, weight decay 1e-4, §3.4).
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	step int
	m    map[*Tensor][]float64
	v    map[*Tensor][]float64
}

// NewAdam returns an Adam optimizer with the paper's defaults.
func NewAdam(lr, weightDecay float64) *Adam {
	return &Adam{
		LR:          lr,
		Beta1:       0.9,
		Beta2:       0.999,
		Eps:         1e-8,
		WeightDecay: weightDecay,
		m:           map[*Tensor][]float64{},
		v:           map[*Tensor][]float64{},
	}
}

// Step applies one update to every parameter using its accumulated gradient.
func (a *Adam) Step(params []*Tensor) {
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, len(p.Data))
			a.m[p] = m
			a.v[p] = make([]float64, len(p.Data))
		}
		v := a.v[p]
		for i := range p.Data {
			g := p.Grad[i] + a.WeightDecay*p.Data[i]
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mHat := m[i] / bc1
			vHat := v[i] / bc2
			p.Data[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
	}
}

// ZeroGrad clears the gradients of all parameters.
func ZeroGrad(params []*Tensor) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// ClipGradNorm rescales gradients so their global L2 norm is at most max.
// It returns the norm before clipping.
func ClipGradNorm(params []*Tensor, max float64) float64 {
	var total float64
	for _, p := range params {
		for _, g := range p.Grad {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > max && norm > 0 {
		s := max / norm
		for _, p := range params {
			for i := range p.Grad {
				p.Grad[i] *= s
			}
		}
	}
	return norm
}
