package nn

import (
	"math/rand"
	"testing"
)

// benchmarkMatMul times one forward + backward of a training-shaped matmul
// (batch·time rows against a d_model×d_model weight) under the active
// kernel mode, including the graph and gradient-buffer allocations the
// arena is meant to absorb.
func benchmarkMatMul(b *testing.B, reference bool) {
	UseReferenceKernels(reference)
	defer UseReferenceKernels(false)
	rng := rand.New(rand.NewSource(1))
	const rows, d = 256, 64
	x := Randn(rng, 1, rows, d)
	w := Randn(rng, 1, d, d).Param()
	arena := NewArena()
	defer arena.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.ZeroGrad()
		Mean(MatMul(x.InArena(arena), w)).Backward()
		arena.Reset()
	}
}

func BenchmarkMatMul(b *testing.B)          { benchmarkMatMul(b, false) }
func BenchmarkMatMulReference(b *testing.B) { benchmarkMatMul(b, true) }
