package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestConv1DValues(t *testing.T) {
	// Identity kernel: kernel 1, weight 1 copies the input.
	c := &Conv1D{Kernel: 1, In: 1, Out: 1, W: Full(1, 1, 1, 1).Param(), B: Zeros(1).Param()}
	x := New([]int{1, 4, 1}, []float64{1, 2, 3, 4})
	out := c.Forward(x)
	for i := range x.Data {
		if out.Data[i] != x.Data[i] {
			t.Fatalf("identity conv = %v", out.Data)
		}
	}
	// Averaging kernel of width 3 with zero padding at the ends.
	avg := &Conv1D{Kernel: 3, In: 1, Out: 1, W: Full(1.0/3, 3, 1, 1).Param(), B: Zeros(1).Param()}
	out = avg.Forward(x)
	want := []float64{(0 + 1 + 2) / 3.0, 2, 3, (3 + 4 + 0) / 3.0}
	for i := range want {
		if math.Abs(out.Data[i]-want[i]) > 1e-12 {
			t.Fatalf("avg conv = %v, want %v", out.Data, want)
		}
	}
}

func TestGradConv1D(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	conv := NewConv1D(rng, 3, 2, 3)
	x := Randn(rng, 1, 2, 5, 2).Param()
	c := Randn(rng, 1, 2, 5, 3)
	loss := func() *Tensor {
		x.ZeroGrad()
		ZeroGrad(conv.Params())
		return Mean(Mul(conv.Forward(x), c))
	}
	checkGrad(t, "Conv1D/x", x, loss, 1e-4)
	checkGrad(t, "Conv1D/W", conv.W, loss, 1e-4)
	checkGrad(t, "Conv1D/B", conv.B, loss, 1e-4)
}

func TestMaxPool1DValues(t *testing.T) {
	x := New([]int{1, 5, 1}, []float64{3, 1, 4, 1, 5})
	out := MaxPool1D(x, 3, 2)
	// Windows: [3,1,4] [4,1,5] [5]
	want := []float64{4, 5, 5}
	if len(out.Data) != 3 {
		t.Fatalf("pooled length = %d", len(out.Data))
	}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("maxpool = %v, want %v", out.Data, want)
		}
	}
}

func TestGradMaxPool1D(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := Randn(rng, 1, 2, 6, 2).Param()
	// Perturbations near ties break finite differences; spread the values.
	for i := range x.Data {
		x.Data[i] += float64(i) * 0.1
	}
	c := Randn(rng, 1, 2, 3, 2)
	loss := func() *Tensor { x.ZeroGrad(); return Mean(Mul(MaxPool1D(x, 3, 2), c)) }
	checkGrad(t, "MaxPool1D", x, loss, 1e-5)
}

func TestGradELU(t *testing.T) {
	x := New([]int{4}, []float64{-2, -0.5, 0.5, 2}).Param()
	c := New([]int{4}, []float64{1, -1, 0.5, 2})
	checkGrad(t, "ELU", x, func() *Tensor { x.ZeroGrad(); return Mean(Mul(ELU(x), c)) }, 1e-5)
	out := ELU(New([]int{2}, []float64{1, -1}))
	if out.Data[0] != 1 || math.Abs(out.Data[1]-(math.Exp(-1)-1)) > 1e-12 {
		t.Fatalf("ELU values = %v", out.Data)
	}
}

func TestConvPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad input shape")
		}
	}()
	c := NewConv1D(rand.New(rand.NewSource(3)), 3, 2, 2)
	c.Forward(Zeros(2, 5, 3))
}
