package nn

import (
	"math"
	"math/rand"
)

// Linear is a fully connected layer y = xW + b with W of shape [in, out].
type Linear struct {
	W *Tensor
	B *Tensor
}

// NewLinear returns a linear layer with Xavier/Glorot initialisation.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	scale := math.Sqrt(2.0 / float64(in+out))
	return &Linear{
		W: Randn(rng, scale, in, out).Param(),
		B: Zeros(out).Param(),
	}
}

// Forward applies the layer to x of shape [..., in]. It runs as a single
// fused matmul+bias node (the reference-kernel path decomposes it into the
// original MatMul and AddBias ops).
func (l *Linear) Forward(x *Tensor) *Tensor {
	return LinearFused(x, l.W, l.B, ActIdentity)
}

// ForwardAct applies the layer and an activation as one fused node.
func (l *Linear) ForwardAct(x *Tensor, act Activation) *Tensor {
	return LinearFused(x, l.W, l.B, act)
}

// Params returns the trainable parameters.
func (l *Linear) Params() []*Tensor { return []*Tensor{l.W, l.B} }

// LayerNormModule is a layer normalisation with learnable gain and bias.
type LayerNormModule struct {
	Gain *Tensor
	Bias *Tensor
	Eps  float64
}

// NewLayerNorm returns a layer norm over vectors of length d.
func NewLayerNorm(d int) *LayerNormModule {
	return &LayerNormModule{Gain: Full(1, d).Param(), Bias: Zeros(d).Param(), Eps: 1e-5}
}

// Forward normalises the last dimension of x.
func (l *LayerNormModule) Forward(x *Tensor) *Tensor {
	return LayerNorm(x, l.Gain, l.Bias, l.Eps)
}

// Params returns the trainable parameters.
func (l *LayerNormModule) Params() []*Tensor { return []*Tensor{l.Gain, l.Bias} }

// SplitHeads reshapes [B, T, D] into [B·H, T, D/H] for multi-head attention.
func SplitHeads(x *Tensor, heads int) *Tensor {
	b, t, d := x.Shape[0], x.Shape[1], x.Shape[2]
	if d%heads != 0 {
		panic("nn: model dim not divisible by heads")
	}
	dh := d / heads
	data := allocFromUninit(arenaOf(x), len(x.Data))
	for bi := 0; bi < b; bi++ {
		for ti := 0; ti < t; ti++ {
			for h := 0; h < heads; h++ {
				src := (bi*t+ti)*d + h*dh
				dst := ((bi*heads+h)*t + ti) * dh
				copy(data[dst:dst+dh], x.Data[src:src+dh])
			}
		}
	}
	return result([]int{b * heads, t, dh}, data, func(out *Tensor) {
		if !x.requiresGrad {
			return
		}
		for bi := 0; bi < b; bi++ {
			for ti := 0; ti < t; ti++ {
				for h := 0; h < heads; h++ {
					src := (bi*t+ti)*d + h*dh
					dst := ((bi*heads+h)*t + ti) * dh
					for c := 0; c < dh; c++ {
						x.Grad[src+c] += out.Grad[dst+c]
					}
				}
			}
		}
	}, x)
}

// MergeHeads is the inverse of SplitHeads: [B·H, T, Dh] → [B, T, H·Dh].
func MergeHeads(x *Tensor, heads int) *Tensor {
	bh, t, dh := x.Shape[0], x.Shape[1], x.Shape[2]
	if bh%heads != 0 {
		panic("nn: batch not divisible by heads")
	}
	b := bh / heads
	d := heads * dh
	data := allocFromUninit(arenaOf(x), len(x.Data))
	for bi := 0; bi < b; bi++ {
		for ti := 0; ti < t; ti++ {
			for h := 0; h < heads; h++ {
				src := ((bi*heads+h)*t + ti) * dh
				dst := (bi*t+ti)*d + h*dh
				copy(data[dst:dst+dh], x.Data[src:src+dh])
			}
		}
	}
	return result([]int{b, t, d}, data, func(out *Tensor) {
		if !x.requiresGrad {
			return
		}
		for bi := 0; bi < b; bi++ {
			for ti := 0; ti < t; ti++ {
				for h := 0; h < heads; h++ {
					src := ((bi*heads+h)*t + ti) * dh
					dst := (bi*t+ti)*d + h*dh
					for c := 0; c < dh; c++ {
						x.Grad[src+c] += out.Grad[dst+c]
					}
				}
			}
		}
	}, x)
}

// MultiHeadAttention is standard scaled dot-product attention with H heads
// (Vaswani et al. 2017).
type MultiHeadAttention struct {
	Heads          int
	DModel         int
	Wq, Wk, Wv, Wo *Linear
}

// NewMultiHeadAttention returns an attention module with dModel features.
func NewMultiHeadAttention(rng *rand.Rand, dModel, heads int) *MultiHeadAttention {
	return &MultiHeadAttention{
		Heads:  heads,
		DModel: dModel,
		Wq:     NewLinear(rng, dModel, dModel),
		Wk:     NewLinear(rng, dModel, dModel),
		Wv:     NewLinear(rng, dModel, dModel),
		Wo:     NewLinear(rng, dModel, dModel),
	}
}

// Forward computes attention of queries q over keys/values k, v (shapes
// [B, Tq, D], [B, Tk, D], [B, Tk, D]). A non-nil mask of shape [Tq, Tk]
// blocks attention where mask != 0 (causal masking).
func (m *MultiHeadAttention) Forward(q, k, v *Tensor, mask *Tensor) *Tensor {
	qh := SplitHeads(m.Wq.Forward(q), m.Heads) // [BH, Tq, Dh]
	kh := SplitHeads(m.Wk.Forward(k), m.Heads)
	vh := SplitHeads(m.Wv.Forward(v), m.Heads)
	dh := m.DModel / m.Heads
	out := ScaledDotAttention(qh, kh, vh, mask, 1/math.Sqrt(float64(dh))) // [BH, Tq, Dh]
	return m.Wo.Forward(MergeHeads(out, m.Heads))
}

// Params returns the trainable parameters.
func (m *MultiHeadAttention) Params() []*Tensor {
	var ps []*Tensor
	for _, l := range []*Linear{m.Wq, m.Wk, m.Wv, m.Wo} {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// CausalMask returns a [t, t] mask with ones above the diagonal, blocking
// attention to future positions.
func CausalMask(t int) *Tensor {
	m := Zeros(t, t)
	for i := 0; i < t; i++ {
		for j := i + 1; j < t; j++ {
			m.Data[i*t+j] = 1
		}
	}
	return m
}

// GRUCell is a gated recurrent unit cell (Cho et al. 2014).
type GRUCell struct {
	Hidden                 int
	Wz, Wr, Wh, Uz, Ur, Uh *Linear
}

// NewGRUCell returns a GRU cell mapping inputs of size in to a hidden state
// of size hidden.
func NewGRUCell(rng *rand.Rand, in, hidden int) *GRUCell {
	return &GRUCell{
		Hidden: hidden,
		Wz:     NewLinear(rng, in, hidden),
		Wr:     NewLinear(rng, in, hidden),
		Wh:     NewLinear(rng, in, hidden),
		Uz:     NewLinear(rng, hidden, hidden),
		Ur:     NewLinear(rng, hidden, hidden),
		Uh:     NewLinear(rng, hidden, hidden),
	}
}

// Step advances the cell one time step: x is [B, in], h is [B, hidden].
// The gate chains run as fused nodes: sigmoid/tanh fold into the gate sums
// (AddSigmoid, AddTanh) and the state update is a single Lerp instead of
// the five-op ones/Sub/Mul/Mul/Add chain.
func (g *GRUCell) Step(x, h *Tensor) *Tensor {
	z := AddSigmoid(g.Wz.Forward(x), g.Uz.Forward(h))
	r := AddSigmoid(g.Wr.Forward(x), g.Ur.Forward(h))
	hTilde := AddTanh(g.Wh.Forward(x), g.Uh.Forward(Mul(r, h)))
	return Lerp(h, hTilde, z)
}

// Params returns the trainable parameters.
func (g *GRUCell) Params() []*Tensor {
	var ps []*Tensor
	for _, l := range []*Linear{g.Wz, g.Wr, g.Wh, g.Uz, g.Ur, g.Uh} {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// PositionalEncoding holds the fixed sinusoidal position table of the
// Transformer (Vaswani et al. 2017).
type PositionalEncoding struct {
	table *Tensor // [maxLen, d]
	d     int
}

// NewPositionalEncoding precomputes encodings for positions < maxLen.
func NewPositionalEncoding(maxLen, d int) *PositionalEncoding {
	t := Zeros(maxLen, d)
	for pos := 0; pos < maxLen; pos++ {
		for i := 0; i < d; i++ {
			angle := float64(pos) / math.Pow(10000, float64(2*(i/2))/float64(d))
			if i%2 == 0 {
				t.Data[pos*d+i] = math.Sin(angle)
			} else {
				t.Data[pos*d+i] = math.Cos(angle)
			}
		}
	}
	return &PositionalEncoding{table: t, d: d}
}

// Add adds positional encodings to x of shape [B, T, d].
func (p *PositionalEncoding) Add(x *Tensor) *Tensor {
	b, t, d := x.Shape[0], x.Shape[1], x.Shape[2]
	if d != p.d || t > p.table.Shape[0] {
		panic("nn: positional encoding size mismatch")
	}
	data := allocFromUninit(arenaOf(x), len(x.Data))
	for bi := 0; bi < b; bi++ {
		for ti := 0; ti < t; ti++ {
			off := (bi*t + ti) * d
			pe := p.table.Data[ti*d : (ti+1)*d]
			for c := 0; c < d; c++ {
				data[off+c] = x.Data[off+c] + pe[c]
			}
		}
	}
	return result(x.Shape, data, func(out *Tensor) {
		if !x.requiresGrad {
			return
		}
		addAcc(x.Grad, out.Grad)
	}, x)
}

// MovingAvg1D smooths each row of x ([B, L]) with a centred moving average
// of the given kernel size, replicating the edge values as padding — the
// series decomposition block of DLinear (Zeng et al. 2023).
func MovingAvg1D(x *Tensor, kernel int) *Tensor {
	if kernel < 1 {
		panic("nn: moving average kernel must be >= 1")
	}
	b, l := x.Shape[0], x.Shape[1]
	front := (kernel - 1) / 2
	back := kernel - 1 - front
	data := allocFrom(arenaOf(x), len(x.Data))
	// contrib[j] collects which padded index each position maps to; padding
	// replicates x[0] and x[l-1].
	clampIdx := func(j int) int {
		if j < 0 {
			return 0
		}
		if j >= l {
			return l - 1
		}
		return j
	}
	inv := 1 / float64(kernel)
	for bi := 0; bi < b; bi++ {
		row := x.Data[bi*l : (bi+1)*l]
		out := data[bi*l : (bi+1)*l]
		for i := 0; i < l; i++ {
			var s float64
			for j := i - front; j <= i+back; j++ {
				s += row[clampIdx(j)]
			}
			out[i] = s * inv
		}
	}
	return result(x.Shape, data, func(out *Tensor) {
		if !x.requiresGrad {
			return
		}
		for bi := 0; bi < b; bi++ {
			g := out.Grad[bi*l : (bi+1)*l]
			xg := x.Grad[bi*l : (bi+1)*l]
			for i := 0; i < l; i++ {
				gi := g[i] * inv
				for j := i - front; j <= i+back; j++ {
					xg[clampIdx(j)] += gi
				}
			}
		}
	}, x)
}
