package nn

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// The nn compute layer has two kernel paths:
//
//   - the fast path (default): cache-blocked matmul kernels, fused ops, and
//     arena-pooled buffers, and
//   - the reference path: the original naive scalar kernels with a fresh
//     heap allocation per op, kept for differential testing and as the
//     baseline for the kernel benchmarks.
//
// The switch is process-wide and read atomically, so flipping it between
// training runs is safe; flipping it while a graph is being built or
// differentiated mixes kernels within one graph and is not supported.
var refKernels atomic.Bool

// UseReferenceKernels selects the original scalar kernels and per-op heap
// allocation (true) or the blocked/fused/pooled fast path (false, default).
func UseReferenceKernels(on bool) { refKernels.Store(on) }

// ReferenceKernelsEnabled reports which kernel path is active.
func ReferenceKernelsEnabled() bool { return refKernels.Load() }

// Buffers are pooled in power-of-two size classes from 64 to 4M float64s
// (512 B to 32 MB). Larger requests fall through to plain allocation.
const (
	minClassShift = 6
	maxClassShift = 22
	numClasses    = maxClassShift - minClassShift + 1
)

// classPools shares retired buffers across goroutines (and therefore across
// the evaluation harness's (model, seed) units). Pointers to slice headers
// are stored to avoid an interface allocation on every Put.
var classPools [numClasses]sync.Pool

// classIndex maps a requested length to its size class, or -1 when the
// request is too large to pool.
func classIndex(n int) int {
	if n <= 0 {
		return -1
	}
	s := bits.Len(uint(n - 1)) // ceil(log2 n)
	if s < minClassShift {
		s = minClassShift
	}
	if s > maxClassShift {
		return -1
	}
	return s - minClassShift
}

// Arena is a per-goroutine tensor-buffer pool. Ops allocate every
// intermediate Data/Grad buffer from the arena of their inputs (see
// allocFrom and result), the training loop calls Reset at each
// optimizer-step boundary to recycle the whole step's buffers locally, and
// Release at the end of a fit/predict returns the memory to the global
// size-classed pools for other goroutines. An Arena must not be shared
// between goroutines; the global pools behind it are safe for concurrent
// use.
type Arena struct {
	free [numClasses][]*[]float64 // recycled by Reset, reused by alloc
	live []*[]float64             // handed out since the last Reset

	// Graph nodes are pooled alongside buffers: result draws the output
	// Tensor struct (with its Shape and parents slice capacity) from
	// nodeFree, so the per-op metadata allocations — struct, shape copy,
	// parent list — disappear in steady state along with the data buffers.
	nodeFree []*Tensor
	nodeLive []*Tensor

	// Backward traversal scratch, reused across steps: the visited set,
	// topological order, and DFS stack of Tensor.Backward. Stale graph
	// references left after a traversal pin only pooled nodes (recycled by
	// Reset regardless) and parameters (owned by the model), never data
	// buffers.
	bwSeen  map[*Tensor]bool
	bwOrder []*Tensor
	bwStack []bwFrame
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// alloc returns a zeroed slice of length n backed by pooled memory.
func (a *Arena) alloc(n int) []float64 {
	buf := a.allocUninit(n)
	clear(buf)
	return buf
}

// allocUninit returns a pooled slice of length n with arbitrary contents,
// for outputs every element of which the caller overwrites.
func (a *Arena) allocUninit(n int) []float64 {
	c := classIndex(n)
	if c < 0 {
		return make([]float64, n)
	}
	var bp *[]float64
	if l := len(a.free[c]); l > 0 {
		bp = a.free[c][l-1]
		a.free[c] = a.free[c][:l-1]
	} else if v := classPools[c].Get(); v != nil {
		bp = v.(*[]float64)
	} else {
		b := make([]float64, 1<<(c+minClassShift))
		bp = &b
	}
	a.live = append(a.live, bp)
	return (*bp)[:n]
}

// node returns a recycled (or fresh) Tensor struct for result to fill. The
// returned tensor keeps the Shape and parents capacity of its previous
// life; all fields referencing old state have been cleared by Reset.
func (a *Arena) node() *Tensor {
	var t *Tensor
	if l := len(a.nodeFree); l > 0 {
		t = a.nodeFree[l-1]
		a.nodeFree = a.nodeFree[:l-1]
	} else {
		t = &Tensor{}
	}
	a.nodeLive = append(a.nodeLive, t)
	return t
}

// Reset recycles every buffer and graph node handed out since the previous
// Reset into the arena's local free lists. Call it only when no tensor
// allocated from the arena is referenced anymore — in training, after the
// optimizer step has consumed the gradients.
func (a *Arena) Reset() {
	for _, bp := range a.live {
		a.free[classIndex(cap(*bp))] = append(a.free[classIndex(cap(*bp))], bp)
	}
	a.live = a.live[:0]
	for _, t := range a.nodeLive {
		// Clear references so recycled buffers and parent tensors are not
		// pinned by the node free list; Shape and parents keep their
		// capacity for reuse.
		t.Data = nil
		t.Grad = nil
		t.Shape = t.Shape[:0]
		clear(t.parents)
		t.parents = t.parents[:0]
		t.backward = nil
		t.requiresGrad = false
		t.arena = nil
		a.nodeFree = append(a.nodeFree, t)
	}
	a.nodeLive = a.nodeLive[:0]
}

// Release resets the arena and returns all of its buffers to the global
// pools, where other goroutines (e.g. the next (model, seed) unit of the
// evaluation grid) can claim them.
func (a *Arena) Release() {
	a.Reset()
	for c := range a.free {
		for _, bp := range a.free[c] {
			classPools[c].Put(bp)
		}
		a.free[c] = nil
	}
}

// allocFrom returns a zeroed length-n buffer: pooled when an arena is
// available and the fast path is active, plainly heap-allocated otherwise
// (the reference path deliberately keeps the original one-make-per-op
// behaviour so benchmarks measure the pooling win).
func allocFrom(a *Arena, n int) []float64 {
	if a == nil || refKernels.Load() {
		return make([]float64, n)
	}
	return a.alloc(n)
}

// allocFromUninit is allocFrom without the zero fill, for op outputs whose
// every element is written before the buffer escapes.
func allocFromUninit(a *Arena, n int) []float64 {
	if a == nil || refKernels.Load() {
		return make([]float64, n)
	}
	return a.allocUninit(n)
}

// arenaOf picks the arena shared by an op's inputs: the first non-nil one.
func arenaOf(a *Tensor) *Arena { return a.arena }

func arenaOf2(a, b *Tensor) *Arena {
	if a.arena != nil {
		return a.arena
	}
	return b.arena
}
