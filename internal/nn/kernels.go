package nn

// Matmul kernels. The fast path register-blocks over four rows of A so each
// streamed row of B (or of the packed Bᵀ) is reused four times from
// registers, and slices every row once up front so the compiler can
// eliminate bounds checks in the inner loops. Per-output-element summation
// order (p ascending) matches the reference kernels, so forward results are
// bit-compatible; backward kernels regroup additions and agree within
// ~1e-12 (see the differential tests).

// getScratch borrows a transient kernel workspace (packed transposes) from
// the global size-class pools, so kernels without an arena in reach stay
// allocation-free in steady state. Pass the returned handle to putScratch
// when done; a nil handle means the request was too large to pool.
func getScratch(n int) (*[]float64, []float64) {
	c := classIndex(n)
	if c < 0 {
		return nil, make([]float64, n)
	}
	if v := classPools[c].Get(); v != nil {
		bp := v.(*[]float64)
		return bp, (*bp)[:n]
	}
	b := make([]float64, 1<<(c+minClassShift))
	return &b, b[:n]
}

func putScratch(bp *[]float64) {
	if bp != nil {
		classPools[classIndex(cap(*bp))].Put(bp)
	}
}

// matmulFwd accumulates dst += a·b for row-major a [m,k], b [k,n],
// dst [m,n]. dst must be pre-initialised (zero, or bias rows for the fused
// linear op).
//
// Large shapes run as a packed transpose of b followed by the dot-product
// kernel: the axpy form below loads and stores every dst element k/4 times,
// while the dot form stores each once, which measures 1.4–1.6× faster at
// training shapes despite the packing pass. Both sum each output in
// p-ascending order, so the choice does not change results. Small or thin
// shapes keep the axpy form, whose zero-skip and lack of packing win there.
func matmulFwd(dst, a, b []float64, m, k, n int) {
	if refKernels.Load() {
		matmulFwdRef(dst, a, b, m, k, n)
		return
	}
	if m >= 16 && k >= 8 {
		bp, bt := getScratch(k * n)
		packTranspose(bt, b, k, n)
		matmulNT(dst, a, bt, m, n, k)
		putScratch(bp)
		return
	}
	i := 0
	for ; i+4 <= m; i += 4 {
		r0 := dst[(i+0)*n : (i+0)*n+n]
		r1 := dst[(i+1)*n : (i+1)*n+n]
		r2 := dst[(i+2)*n : (i+2)*n+n]
		r3 := dst[(i+3)*n : (i+3)*n+n]
		a0 := a[(i+0)*k : (i+0)*k+k]
		a1 := a[(i+1)*k : (i+1)*k+k]
		a2 := a[(i+2)*k : (i+2)*k+k]
		a3 := a[(i+3)*k : (i+3)*k+k]
		for p := 0; p < k; p++ {
			v0, v1, v2, v3 := a0[p], a1[p], a2[p], a3[p]
			if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
				continue
			}
			row := b[p*n : p*n+n]
			for j, bv := range row {
				r0[j] += v0 * bv
				r1[j] += v1 * bv
				r2[j] += v2 * bv
				r3[j] += v3 * bv
			}
		}
	}
	for ; i < m; i++ {
		ri := dst[i*n : i*n+n]
		ai := a[i*k : i*k+k]
		for p, av := range ai {
			if av == 0 {
				continue
			}
			row := b[p*n : p*n+n]
			for j, bv := range row {
				ri[j] += av * bv
			}
		}
	}
}

// matmulFwdRef is the original triple loop (zero-skip on A elements).
func matmulFwdRef(dst, a, b []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			av := a[i*k+p]
			if av == 0 {
				continue
			}
			bRow := b[p*n : (p+1)*n]
			oRow := dst[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				oRow[j] += av * bRow[j]
			}
		}
	}
}

// packTranspose writes bᵀ into dst: dst[j*k+p] = b[p*n+j]. The packed
// layout makes the p-inner loops of the dA kernels unit-stride.
func packTranspose(dst, b []float64, k, n int) {
	for p := 0; p < k; p++ {
		row := b[p*n : p*n+n]
		for j, v := range row {
			dst[j*k+p] = v
		}
	}
}

// matmulBwdAPacked accumulates dA += g·bᵀ with g [m,n] and bt the packed
// transpose of b ([n,k]): the inner p-loop is unit-stride over both the
// gradient row and the packed row, and the zero-skip check is hoisted to
// one test per gradient element.
func matmulBwdAPacked(dA, g, bt []float64, m, k, n int) {
	i := 0
	for ; i+4 <= m; i += 4 {
		g0 := g[(i+0)*n : (i+0)*n+n]
		g1 := g[(i+1)*n : (i+1)*n+n]
		g2 := g[(i+2)*n : (i+2)*n+n]
		g3 := g[(i+3)*n : (i+3)*n+n]
		d0 := dA[(i+0)*k : (i+0)*k+k]
		d1 := dA[(i+1)*k : (i+1)*k+k]
		d2 := dA[(i+2)*k : (i+2)*k+k]
		d3 := dA[(i+3)*k : (i+3)*k+k]
		for j := 0; j < n; j++ {
			v0, v1, v2, v3 := g0[j], g1[j], g2[j], g3[j]
			if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
				continue
			}
			bj := bt[j*k : j*k+k]
			for p, bv := range bj {
				d0[p] += v0 * bv
				d1[p] += v1 * bv
				d2[p] += v2 * bv
				d3[p] += v3 * bv
			}
		}
	}
	for ; i < m; i++ {
		gi := g[i*n : i*n+n]
		di := dA[i*k : i*k+k]
		for j, gv := range gi {
			if gv == 0 {
				continue
			}
			bj := bt[j*k : j*k+k]
			for p, bv := range bj {
				di[p] += gv * bv
			}
		}
	}
}

// matmulBwdARef is the original dot-product formulation of dA += g·bᵀ
// reading b in its native [k,n] layout.
func matmulBwdARef(dA, g, b []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			var s float64
			bRow := b[p*n : (p+1)*n]
			gRow := g[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				s += gRow[j] * bRow[j]
			}
			dA[i*k+p] += s
		}
	}
}

// matmulBwdB accumulates dB += aᵀ·g with a [m,k], g [m,n]. The fast path
// iterates rows of a (unit-stride reads, unlike the reference kernel's
// stride-k column walk) and blocks four rows per pass so each dB row is
// loaded and stored once per four gradient rows. (A packed-dot form like
// matmulFwd's is a loss here: it needs both aᵀ and gᵀ, and those packs
// write [k,m]/[n,m] buffers at stride m — one cache miss per element at
// training shapes.)
func matmulBwdB(dB, a, g []float64, m, k, n int) {
	if refKernels.Load() {
		matmulBwdBRef(dB, a, g, m, k, n)
		return
	}
	if n == 8 {
		matmulBwdBN8(dB, a, g, m, k)
		return
	}
	i := 0
	for ; i+4 <= m; i += 4 {
		a0 := a[(i+0)*k : (i+0)*k+k]
		a1 := a[(i+1)*k : (i+1)*k+k]
		a2 := a[(i+2)*k : (i+2)*k+k]
		a3 := a[(i+3)*k : (i+3)*k+k]
		g0 := g[(i+0)*n : (i+0)*n+n]
		g1 := g[(i+1)*n : (i+1)*n+n]
		g2 := g[(i+2)*n : (i+2)*n+n]
		g3 := g[(i+3)*n : (i+3)*n+n]
		for p := 0; p < k; p++ {
			v0, v1, v2, v3 := a0[p], a1[p], a2[p], a3[p]
			if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
				continue
			}
			row := dB[p*n : p*n+n]
			for j := range row {
				row[j] += v0*g0[j] + v1*g1[j] + v2*g2[j] + v3*g3[j]
			}
		}
	}
	for ; i < m; i++ {
		ai := a[i*k : i*k+k]
		gi := g[i*n : i*n+n]
		for p, av := range ai {
			if av == 0 {
				continue
			}
			row := dB[p*n : p*n+n]
			for j, gv := range gi {
				row[j] += av * gv
			}
		}
	}
}

// matmulBwdBN8 unrolls matmulBwdB's inner loop for n == 8, the per-head
// gradient width of attention dV and dK at the default d_model: at that
// width the loop counter and bounds checks dominate, and unrolling the
// eight per-element updates (each the same v0·g0+…+v3·g3 sum as the loop
// body, so results are identical) measures well ahead of the generic form.
func matmulBwdBN8(dB, a, g []float64, m, k int) {
	const n = 8
	i := 0
	for ; i+4 <= m; i += 4 {
		a0 := a[(i+0)*k : (i+0)*k+k]
		a1 := a[(i+1)*k : (i+1)*k+k]
		a2 := a[(i+2)*k : (i+2)*k+k]
		a3 := a[(i+3)*k : (i+3)*k+k]
		g0 := g[(i+0)*n : (i+0)*n+n]
		g1 := g[(i+1)*n : (i+1)*n+n]
		g2 := g[(i+2)*n : (i+2)*n+n]
		g3 := g[(i+3)*n : (i+3)*n+n]
		for p := 0; p < k; p++ {
			v0, v1, v2, v3 := a0[p], a1[p], a2[p], a3[p]
			if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
				continue
			}
			row := dB[p*n : p*n+n]
			row[0] += v0*g0[0] + v1*g1[0] + v2*g2[0] + v3*g3[0]
			row[1] += v0*g0[1] + v1*g1[1] + v2*g2[1] + v3*g3[1]
			row[2] += v0*g0[2] + v1*g1[2] + v2*g2[2] + v3*g3[2]
			row[3] += v0*g0[3] + v1*g1[3] + v2*g2[3] + v3*g3[3]
			row[4] += v0*g0[4] + v1*g1[4] + v2*g2[4] + v3*g3[4]
			row[5] += v0*g0[5] + v1*g1[5] + v2*g2[5] + v3*g3[5]
			row[6] += v0*g0[6] + v1*g1[6] + v2*g2[6] + v3*g3[6]
			row[7] += v0*g0[7] + v1*g1[7] + v2*g2[7] + v3*g3[7]
		}
	}
	for ; i < m; i++ {
		ai := a[i*k : i*k+k]
		gi := g[i*n : i*n+n]
		for p, av := range ai {
			if av == 0 {
				continue
			}
			row := dB[p*n : p*n+n]
			row[0] += av * gi[0]
			row[1] += av * gi[1]
			row[2] += av * gi[2]
			row[3] += av * gi[3]
			row[4] += av * gi[4]
			row[5] += av * gi[5]
			row[6] += av * gi[6]
			row[7] += av * gi[7]
		}
	}
}

// matmulBwdBRef is the original dB += aᵀ·g loop (p-outer, strided reads of
// a's columns).
func matmulBwdBRef(dB, a, g []float64, m, k, n int) {
	for p := 0; p < k; p++ {
		for i := 0; i < m; i++ {
			av := a[i*k+p]
			if av == 0 {
				continue
			}
			gRow := g[i*n : (i+1)*n]
			bgRow := dB[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				bgRow[j] += av * gRow[j]
			}
		}
	}
}

// matmulNT accumulates dst += a·bᵀ for row-major a [m,d], b [n,d],
// dst [m,n] — both operands read with unit stride, so q·kᵀ attention
// scores and the fused-linear dX = g·wᵀ need no transposed copy of the
// right operand. Four rows of a run per pass as independent dot-product
// chains for instruction-level parallelism; the c-ascending summation
// matches the reference MatMul(a, Transpose(b)) order bit for bit.
func matmulNT(dst, a, b []float64, m, n, d int) {
	i := 0
	for ; i+4 <= m; i += 4 {
		a0 := a[(i+0)*d : (i+0)*d+d]
		a1 := a[(i+1)*d : (i+1)*d+d]
		a2 := a[(i+2)*d : (i+2)*d+d]
		a3 := a[(i+3)*d : (i+3)*d+d]
		d0 := dst[(i+0)*n : (i+0)*n+n]
		d1 := dst[(i+1)*n : (i+1)*n+n]
		d2 := dst[(i+2)*n : (i+2)*n+n]
		d3 := dst[(i+3)*n : (i+3)*n+n]
		for j := 0; j < n; j++ {
			bj := b[j*d : j*d+d]
			var s0, s1, s2, s3 float64
			for c, bv := range bj {
				s0 += a0[c] * bv
				s1 += a1[c] * bv
				s2 += a2[c] * bv
				s3 += a3[c] * bv
			}
			d0[j] += s0
			d1[j] += s1
			d2[j] += s2
			d3[j] += s3
		}
	}
	for ; i < m; i++ {
		ai := a[i*d : i*d+d]
		di := dst[i*n : i*n+n]
		for j := 0; j < n; j++ {
			bj := b[j*d : j*d+d]
			var s float64
			for c, av := range ai {
				s += av * bj[c]
			}
			di[j] += s
		}
	}
}

// matmulNTStore is matmulNT with store semantics (dst = a·bᵀ instead of
// dst += a·bᵀ): callers with a fully-overwritten destination skip both the
// zero fill of the buffer and the read-modify-write of each element.
//
// d == 8 — the per-head depth of attention scores and dP at the default
// d_model — gets a fully unrolled dot: the loop-carried counter and bounds
// checks dominate 8-element dots, and unrolling measures ~1.6× faster. The
// unrolled expression is left-associative in c-ascending order, so it is
// bit-identical to the loop.
func matmulNTStore(dst, a, b []float64, m, n, d int) {
	if d == 8 {
		matmulNTStoreD8(dst, a, b, m, n)
		return
	}
	i := 0
	for ; i+4 <= m; i += 4 {
		a0 := a[(i+0)*d : (i+0)*d+d]
		a1 := a[(i+1)*d : (i+1)*d+d]
		a2 := a[(i+2)*d : (i+2)*d+d]
		a3 := a[(i+3)*d : (i+3)*d+d]
		d0 := dst[(i+0)*n : (i+0)*n+n]
		d1 := dst[(i+1)*n : (i+1)*n+n]
		d2 := dst[(i+2)*n : (i+2)*n+n]
		d3 := dst[(i+3)*n : (i+3)*n+n]
		for j := 0; j < n; j++ {
			bj := b[j*d : j*d+d]
			var s0, s1, s2, s3 float64
			for c, bv := range bj {
				s0 += a0[c] * bv
				s1 += a1[c] * bv
				s2 += a2[c] * bv
				s3 += a3[c] * bv
			}
			d0[j] = s0
			d1[j] = s1
			d2[j] = s2
			d3[j] = s3
		}
	}
	for ; i < m; i++ {
		ai := a[i*d : i*d+d]
		di := dst[i*n : i*n+n]
		for j := 0; j < n; j++ {
			bj := b[j*d : j*d+d]
			var s float64
			for c, av := range ai {
				s += av * bj[c]
			}
			di[j] = s
		}
	}
}

func matmulNTStoreD8(dst, a, b []float64, m, n int) {
	const d = 8
	i := 0
	for ; i+4 <= m; i += 4 {
		a0 := a[(i+0)*d : (i+0)*d+d]
		a1 := a[(i+1)*d : (i+1)*d+d]
		a2 := a[(i+2)*d : (i+2)*d+d]
		a3 := a[(i+3)*d : (i+3)*d+d]
		d0 := dst[(i+0)*n : (i+0)*n+n]
		d1 := dst[(i+1)*n : (i+1)*n+n]
		d2 := dst[(i+2)*n : (i+2)*n+n]
		d3 := dst[(i+3)*n : (i+3)*n+n]
		for j := 0; j < n; j++ {
			bj := b[j*d : j*d+d]
			b0, b1, b2, b3, b4, b5, b6, b7 := bj[0], bj[1], bj[2], bj[3], bj[4], bj[5], bj[6], bj[7]
			d0[j] = a0[0]*b0 + a0[1]*b1 + a0[2]*b2 + a0[3]*b3 + a0[4]*b4 + a0[5]*b5 + a0[6]*b6 + a0[7]*b7
			d1[j] = a1[0]*b0 + a1[1]*b1 + a1[2]*b2 + a1[3]*b3 + a1[4]*b4 + a1[5]*b5 + a1[6]*b6 + a1[7]*b7
			d2[j] = a2[0]*b0 + a2[1]*b1 + a2[2]*b2 + a2[3]*b3 + a2[4]*b4 + a2[5]*b5 + a2[6]*b6 + a2[7]*b7
			d3[j] = a3[0]*b0 + a3[1]*b1 + a3[2]*b2 + a3[3]*b3 + a3[4]*b4 + a3[5]*b5 + a3[6]*b6 + a3[7]*b7
		}
	}
	for ; i < m; i++ {
		ai := a[i*d : i*d+d]
		di := dst[i*n : i*n+n]
		for j := 0; j < n; j++ {
			bj := b[j*d : j*d+d]
			di[j] = ai[0]*bj[0] + ai[1]*bj[1] + ai[2]*bj[2] + ai[3]*bj[3] +
				ai[4]*bj[4] + ai[5]*bj[5] + ai[6]*bj[6] + ai[7]*bj[7]
		}
	}
}

// matmulNTPrefix is matmulNTStore restricted per output row: row i of dst
// only receives columns j < rowEnd[i]; columns at and past rowEnd[i] are
// left untouched (the attention callers keep them zeroed). The fused
// attention uses it to skip the masked region of causal score matrices
// entirely — for a [T, T] causal mask that halves the score, softmax, and
// dP work. Each computed element is an independent c-ascending dot product,
// bit-identical to matmulNT's.
func matmulNTPrefix(dst, a, b []float64, m, n, d int, rowEnd []int) {
	if d == 8 {
		matmulNTPrefixD8(dst, a, b, m, n, rowEnd)
		return
	}
	i := 0
	for ; i+4 <= m; i += 4 {
		e0, e1, e2, e3 := rowEnd[i], rowEnd[i+1], rowEnd[i+2], rowEnd[i+3]
		jmin := e0
		if e1 < jmin {
			jmin = e1
		}
		if e2 < jmin {
			jmin = e2
		}
		if e3 < jmin {
			jmin = e3
		}
		a0 := a[(i+0)*d : (i+0)*d+d]
		a1 := a[(i+1)*d : (i+1)*d+d]
		a2 := a[(i+2)*d : (i+2)*d+d]
		a3 := a[(i+3)*d : (i+3)*d+d]
		d0 := dst[(i+0)*n : (i+0)*n+n]
		d1 := dst[(i+1)*n : (i+1)*n+n]
		d2 := dst[(i+2)*n : (i+2)*n+n]
		d3 := dst[(i+3)*n : (i+3)*n+n]
		for j := 0; j < jmin; j++ {
			bj := b[j*d : j*d+d]
			var s0, s1, s2, s3 float64
			for c, bv := range bj {
				s0 += a0[c] * bv
				s1 += a1[c] * bv
				s2 += a2[c] * bv
				s3 += a3[c] * bv
			}
			d0[j] = s0
			d1[j] = s1
			d2[j] = s2
			d3[j] = s3
		}
		// Per-row tails beyond the block's common prefix.
		for r := 0; r < 4; r++ {
			ar := a[(i+r)*d : (i+r)*d+d]
			dr := dst[(i+r)*n : (i+r)*n+n]
			for j := jmin; j < rowEnd[i+r]; j++ {
				bj := b[j*d : j*d+d]
				var s float64
				for c, av := range ar {
					s += av * bj[c]
				}
				dr[j] = s
			}
		}
	}
	for ; i < m; i++ {
		ai := a[i*d : i*d+d]
		di := dst[i*n : i*n+n]
		for j := 0; j < rowEnd[i]; j++ {
			bj := b[j*d : j*d+d]
			var s float64
			for c, av := range ai {
				s += av * bj[c]
			}
			di[j] = s
		}
	}
}

// matmulNTPrefixD8 is matmulNTPrefix's unrolled depth-8 case (see
// matmulNTStore on why d == 8 earns a dedicated kernel).
func matmulNTPrefixD8(dst, a, b []float64, m, n int, rowEnd []int) {
	const d = 8
	dot := func(ai, bj []float64) float64 {
		bj = bj[:d]
		ai = ai[:d]
		return ai[0]*bj[0] + ai[1]*bj[1] + ai[2]*bj[2] + ai[3]*bj[3] +
			ai[4]*bj[4] + ai[5]*bj[5] + ai[6]*bj[6] + ai[7]*bj[7]
	}
	i := 0
	for ; i+4 <= m; i += 4 {
		e0, e1, e2, e3 := rowEnd[i], rowEnd[i+1], rowEnd[i+2], rowEnd[i+3]
		jmin := e0
		if e1 < jmin {
			jmin = e1
		}
		if e2 < jmin {
			jmin = e2
		}
		if e3 < jmin {
			jmin = e3
		}
		a0 := a[(i+0)*d : (i+0)*d+d]
		a1 := a[(i+1)*d : (i+1)*d+d]
		a2 := a[(i+2)*d : (i+2)*d+d]
		a3 := a[(i+3)*d : (i+3)*d+d]
		d0 := dst[(i+0)*n : (i+0)*n+n]
		d1 := dst[(i+1)*n : (i+1)*n+n]
		d2 := dst[(i+2)*n : (i+2)*n+n]
		d3 := dst[(i+3)*n : (i+3)*n+n]
		for j := 0; j < jmin; j++ {
			bj := b[j*d : j*d+d]
			b0, b1, b2, b3, b4, b5, b6, b7 := bj[0], bj[1], bj[2], bj[3], bj[4], bj[5], bj[6], bj[7]
			d0[j] = a0[0]*b0 + a0[1]*b1 + a0[2]*b2 + a0[3]*b3 + a0[4]*b4 + a0[5]*b5 + a0[6]*b6 + a0[7]*b7
			d1[j] = a1[0]*b0 + a1[1]*b1 + a1[2]*b2 + a1[3]*b3 + a1[4]*b4 + a1[5]*b5 + a1[6]*b6 + a1[7]*b7
			d2[j] = a2[0]*b0 + a2[1]*b1 + a2[2]*b2 + a2[3]*b3 + a2[4]*b4 + a2[5]*b5 + a2[6]*b6 + a2[7]*b7
			d3[j] = a3[0]*b0 + a3[1]*b1 + a3[2]*b2 + a3[3]*b3 + a3[4]*b4 + a3[5]*b5 + a3[6]*b6 + a3[7]*b7
		}
		for r := 0; r < 4; r++ {
			ar := a[(i+r)*d : (i+r)*d+d]
			dr := dst[(i+r)*n : (i+r)*n+n]
			for j := jmin; j < rowEnd[i+r]; j++ {
				dr[j] = dot(ar, b[j*d:j*d+d])
			}
		}
	}
	for ; i < m; i++ {
		ai := a[i*d : i*d+d]
		di := dst[i*n : i*n+n]
		for j := 0; j < rowEnd[i]; j++ {
			di[j] = dot(ai, b[j*d:j*d+d])
		}
	}
}

// addAcc accumulates dst[i] += src[i]; the shared inner loop of the
// gradient-accumulate paths (Add, AddBias, residuals, Reshape).
func addAcc(dst, src []float64) {
	dst = dst[:len(src)]
	for i, v := range src {
		dst[i] += v
	}
}
