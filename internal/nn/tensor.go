// Package nn is a small from-scratch neural network library: reverse-mode
// automatic differentiation over dense tensors, the layers needed by the
// paper's deep forecasting models (linear, layer norm, dropout, GRU cells,
// multi-head attention, positional encodings), and an Adam optimizer with
// weight decay. It substitutes for the PyTorch/Darts stack the paper uses
// (DESIGN.md substitution table).
package nn

import (
	"fmt"
	"math/rand"
)

// Tensor is a dense row-major tensor participating in an autodiff graph.
type Tensor struct {
	Data  []float64
	Grad  []float64
	Shape []int

	requiresGrad bool
	parents      []*Tensor
	backward     func(out *Tensor)

	// arena, when non-nil, is the buffer pool downstream ops allocate
	// their intermediate Data/Grad buffers from. It propagates through
	// result from inputs to outputs, so tagging the input batch of a
	// forward pass (InArena) pools the whole graph for free.
	arena *Arena
}

// New wraps data in a tensor of the given shape (data is used directly).
func New(shape []int, data []float64) *Tensor {
	n := Numel(shape)
	if len(data) != n {
		panic(fmt.Sprintf("nn: shape %v needs %d elements, got %d", shape, n, len(data)))
	}
	return &Tensor{Data: data, Shape: append([]int(nil), shape...)}
}

// Zeros returns a zero tensor of the given shape.
func Zeros(shape ...int) *Tensor {
	return New(shape, make([]float64, Numel(shape)))
}

// Full returns a tensor filled with v.
func Full(v float64, shape ...int) *Tensor {
	t := Zeros(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// Randn returns a tensor of normal samples scaled by scale.
func Randn(rng *rand.Rand, scale float64, shape ...int) *Tensor {
	t := Zeros(shape...)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * scale
	}
	return t
}

// Numel returns the element count of a shape.
func Numel(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// Param marks the tensor as a trainable parameter (gradient required).
func (t *Tensor) Param() *Tensor {
	t.requiresGrad = true
	if t.Grad == nil {
		t.Grad = make([]float64, len(t.Data))
	}
	return t
}

// RequiresGrad reports whether the tensor participates in gradients.
func (t *Tensor) RequiresGrad() bool { return t.requiresGrad }

// InArena tags the tensor with a buffer arena. The tensor's own Data is
// untouched; the tag makes every downstream op of the graph allocate its
// intermediates from the arena (released in bulk at step boundaries).
// Trainable parameters must not be tagged: their buffers outlive steps.
func (t *Tensor) InArena(a *Arena) *Tensor {
	t.arena = a
	return t
}

// Dim returns the size of dimension i (negative indices count from the end).
func (t *Tensor) Dim(i int) int {
	if i < 0 {
		i += len(t.Shape)
	}
	return t.Shape[i]
}

// Clone returns a deep copy detached from the graph.
func (t *Tensor) Clone() *Tensor {
	c := Zeros(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Item returns the single element of a scalar tensor.
func (t *Tensor) Item() float64 {
	if len(t.Data) != 1 {
		panic("nn: Item on non-scalar tensor")
	}
	return t.Data[0]
}

// result builds an op output that links into the autodiff graph when any
// parent requires gradients. On the fast path the output node itself comes
// from the inputs' arena, which recycles the Tensor struct together with
// its Shape and parent-list capacity; copying the variadic parents into the
// pooled slice also lets the compiler keep the call-site argument slice off
// the heap.
func result(shape []int, data []float64, back func(out *Tensor), parents ...*Tensor) *Tensor {
	var ar *Arena
	requiresGrad := false
	for _, p := range parents {
		if p.requiresGrad {
			requiresGrad = true
		}
		if ar == nil {
			ar = p.arena
		}
	}
	var out *Tensor
	if ar != nil && !refKernels.Load() {
		out = ar.node()
		out.Shape = append(out.Shape, shape...)
		out.Data = data
		out.arena = ar
	} else {
		out = New(shape, data)
		out.arena = ar
	}
	if requiresGrad && back != nil {
		out.requiresGrad = true
		out.Grad = allocFrom(ar, len(data))
		out.parents = append(out.parents, parents...)
		out.backward = back
	}
	return out
}

// bwFrame is one DFS stack entry of the Backward traversal.
type bwFrame struct {
	node *Tensor
	next int
}

// Backward runs reverse-mode differentiation from a scalar tensor,
// accumulating gradients into every parameter that contributed.
func (t *Tensor) Backward() {
	if len(t.Data) != 1 {
		panic("nn: Backward must start from a scalar loss")
	}
	if !t.requiresGrad {
		return
	}
	// Topological order via iterative DFS. On the fast path the traversal
	// scratch comes from the arena, so steady-state training steps reuse
	// the visited set, order, and stack instead of reallocating them.
	var (
		order []*Tensor
		seen  map[*Tensor]bool
		stack []bwFrame
	)
	ar := t.arena
	pooled := ar != nil && !refKernels.Load()
	if pooled {
		if ar.bwSeen == nil {
			ar.bwSeen = make(map[*Tensor]bool)
		}
		clear(ar.bwSeen)
		seen = ar.bwSeen
		order = ar.bwOrder[:0]
		stack = ar.bwStack[:0]
	} else {
		seen = map[*Tensor]bool{}
	}
	stack = append(stack, bwFrame{node: t})
	seen[t] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(f.node.parents) {
			p := f.node.parents[f.next]
			f.next++
			if !seen[p] && p.requiresGrad {
				seen[p] = true
				stack = append(stack, bwFrame{node: p})
			}
			continue
		}
		order = append(order, f.node)
		stack = stack[:len(stack)-1]
	}
	if pooled {
		// Hand the (possibly grown) scratch back for the next step.
		ar.bwOrder = order
		ar.bwStack = stack
	}
	t.Grad[0] = 1
	// order is child-before-parent reversed: children appear after their
	// parents were pushed, so walk from the end (t last appended? t is
	// appended last in post-order) — post-order appends leaves first, so
	// iterate in reverse to visit each node before its parents.
	for i := len(order) - 1; i >= 0; i-- {
		if order[i].backward != nil {
			order[i].backward(order[i])
		}
	}
}

// ZeroGrad clears the gradient buffer.
func (t *Tensor) ZeroGrad() {
	for i := range t.Grad {
		t.Grad[i] = 0
	}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 {
	return t.Data[t.offset(idx)]
}

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("nn: index %v for shape %v", idx, t.Shape))
	}
	off := 0
	stride := 1
	for i := len(t.Shape) - 1; i >= 0; i-- {
		if idx[i] < 0 || idx[i] >= t.Shape[i] {
			panic(fmt.Sprintf("nn: index %v out of range for shape %v", idx, t.Shape))
		}
		off += idx[i] * stride
		stride *= t.Shape[i]
	}
	return off
}

func sameShape(a, b *Tensor) {
	if len(a.Shape) != len(b.Shape) {
		panic(fmt.Sprintf("nn: shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			panic(fmt.Sprintf("nn: shape mismatch %v vs %v", a.Shape, b.Shape))
		}
	}
}
