package gbt

// Exact TreeSHAP (Lundberg, Erion & Lee, Nature Machine Intelligence 2020,
// Algorithm 2). For every feature it computes the exact Shapley value of
// the tree ensemble's prediction, in polynomial time, by propagating the
// proportion of feature subsets that flow down each tree path.

// pathElement is one entry of the feature path maintained during the
// TreeSHAP recursion.
type pathElement struct {
	feature int     // feature index, -1 for the root placeholder
	zero    float64 // fraction of paths that flow through when the feature is excluded
	one     float64 // fraction of paths that flow through when the feature is included
	weight  float64 // proportion of subsets of each cardinality
}

// ShapValues returns the Shapley value per feature for one input row,
// plus the expected value of the ensemble as the second return. The local
// accuracy property holds: expected + sum(phi) == Predict(row).
func (e *Ensemble) ShapValues(row []float64) ([]float64, float64) {
	phi := make([]float64, len(row))
	treePhi := make([]float64, len(row))
	expected := e.Base
	for _, t := range e.Trees {
		for i := range treePhi {
			treePhi[i] = 0
		}
		shapRecurse(t, row, treePhi, nil, 1, 1, -1)
		for i := range phi {
			phi[i] += e.LearningRate * treePhi[i]
		}
		expected += e.LearningRate * t.ExpectedValue()
	}
	return phi, expected
}

// ExpectedValue returns the cover-weighted mean leaf value of the tree,
// i.e. E[f(x)] over the training distribution.
func (n *Node) ExpectedValue() float64 {
	if n.IsLeaf() {
		return n.Value
	}
	return (n.Left.Cover*n.Left.ExpectedValue() + n.Right.Cover*n.Right.ExpectedValue()) / n.Cover
}

func shapRecurse(node *Node, x []float64, phi []float64, parent []pathElement, pz, po float64, pi int) {
	m := extendPath(parent, pz, po, pi)
	if node.IsLeaf() {
		for i := 1; i < len(m); i++ {
			w := unwoundPathSum(m, i)
			phi[m[i].feature] += w * (m[i].one - m[i].zero) * node.Value
		}
		return
	}
	hot, cold := node.Left, node.Right
	if x[node.Feature] > node.Threshold {
		hot, cold = node.Right, node.Left
	}
	iz, io := 1.0, 1.0
	if k := findFeature(m, node.Feature); k >= 0 {
		iz, io = m[k].zero, m[k].one
		m = unwindPath(m, k)
	}
	shapRecurse(hot, x, phi, m, iz*hot.Cover/node.Cover, io, node.Feature)
	shapRecurse(cold, x, phi, m, iz*cold.Cover/node.Cover, 0, node.Feature)
}

// extendPath returns a copy of the path with one more element, updating the
// subset-cardinality weights.
func extendPath(m []pathElement, pz, po float64, pi int) []pathElement {
	l := len(m)
	out := make([]pathElement, l+1)
	copy(out, m)
	w := 0.0
	if l == 0 {
		w = 1
	}
	out[l] = pathElement{feature: pi, zero: pz, one: po, weight: w}
	for i := l - 1; i >= 0; i-- {
		out[i+1].weight += po * out[i].weight * float64(i+1) / float64(l+1)
		out[i].weight = pz * out[i].weight * float64(l-i) / float64(l+1)
	}
	return out
}

// unwindPath returns a copy of the path with element i removed, restoring
// the weights to the state before that element was extended.
func unwindPath(m []pathElement, i int) []pathElement {
	l := len(m) - 1
	out := make([]pathElement, len(m))
	copy(out, m)
	one, zero := out[i].one, out[i].zero
	n := out[l].weight
	for j := l - 1; j >= 0; j-- {
		if one != 0 {
			t := out[j].weight
			out[j].weight = n * float64(l+1) / (float64(j+1) * one)
			n = t - out[j].weight*zero*float64(l-j)/float64(l+1)
		} else {
			out[j].weight = out[j].weight * float64(l+1) / (zero * float64(l-j))
		}
	}
	for j := i; j < l; j++ {
		out[j].feature = out[j+1].feature
		out[j].zero = out[j+1].zero
		out[j].one = out[j+1].one
	}
	return out[:l]
}

// unwoundPathSum returns the sum of weights the path would have after
// removing element i, without materialising the unwound path.
func unwoundPathSum(m []pathElement, i int) float64 {
	l := len(m) - 1
	one, zero := m[i].one, m[i].zero
	next := m[l].weight
	var total float64
	for j := l - 1; j >= 0; j-- {
		if one != 0 {
			t := next * float64(l+1) / (float64(j+1) * one)
			total += t
			next = m[j].weight - t*zero*float64(l-j)/float64(l+1)
		} else if zero != 0 {
			total += m[j].weight * float64(l+1) / (zero * float64(l-j))
		}
	}
	return total
}

func findFeature(m []pathElement, feature int) int {
	for i := 1; i < len(m); i++ {
		if m[i].feature == feature {
			return i
		}
	}
	return -1
}

// MeanAbsShap returns the mean absolute Shapley value per feature across
// the given rows — the global importance ranking shown in the paper's
// Figure 5 bar chart.
func (e *Ensemble) MeanAbsShap(rows [][]float64) []float64 {
	if len(rows) == 0 {
		return nil
	}
	out := make([]float64, len(rows[0]))
	for _, r := range rows {
		phi, _ := e.ShapValues(r)
		for i, v := range phi {
			if v < 0 {
				v = -v
			}
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(rows))
	}
	return out
}
