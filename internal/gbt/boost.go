package gbt

import (
	"errors"
	"math"
)

// Options configures gradient boosting.
type Options struct {
	Trees        int     // number of boosting rounds
	LearningRate float64 // shrinkage
	Tree         TreeOptions
	// Patience stops early when validation MSE has not improved for this
	// many rounds (0 disables early stopping).
	Patience int
}

// DefaultOptions are the settings used by the GBoost forecasting model.
func DefaultOptions() Options {
	return Options{Trees: 100, LearningRate: 0.1, Tree: DefaultTreeOptions(), Patience: 10}
}

// Ensemble is a fitted gradient-boosted tree model for regression.
type Ensemble struct {
	Base         float64 // initial prediction (training mean)
	LearningRate float64
	Trees        []*Node
}

// Fit trains an ensemble with squared loss: each round fits a CART tree to
// the current residuals (Friedman 2001). When validation data is supplied
// and Patience > 0, training stops once validation MSE stalls.
func Fit(x [][]float64, y []float64, valX [][]float64, valY []float64, opts Options) (*Ensemble, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, errors.New("gbt: empty or mismatched training data")
	}
	if opts.Trees <= 0 {
		return nil, errors.New("gbt: need at least one boosting round")
	}
	if opts.LearningRate <= 0 || opts.LearningRate > 1 {
		return nil, errors.New("gbt: learning rate must be in (0, 1]")
	}
	e := &Ensemble{Base: meanOf(y), LearningRate: opts.LearningRate}
	pred := make([]float64, len(y))
	for i := range pred {
		pred[i] = e.Base
	}
	var valPred []float64
	if len(valX) > 0 && len(valX) == len(valY) && opts.Patience > 0 {
		valPred = make([]float64, len(valY))
		for i := range valPred {
			valPred[i] = e.Base
		}
	}
	bestVal := math.Inf(1)
	bestLen := 0
	stall := 0
	resid := make([]float64, len(y))
	for round := 0; round < opts.Trees; round++ {
		for i := range resid {
			resid[i] = y[i] - pred[i]
		}
		tree, err := BuildTree(x, resid, opts.Tree)
		if err != nil {
			return nil, err
		}
		e.Trees = append(e.Trees, tree)
		for i, row := range x {
			pred[i] += opts.LearningRate * tree.Predict(row)
		}
		if valPred != nil {
			for i, row := range valX {
				valPred[i] += opts.LearningRate * tree.Predict(row)
			}
			v := mse(valPred, valY)
			if v < bestVal-1e-12 {
				bestVal, bestLen, stall = v, len(e.Trees), 0
			} else {
				stall++
				if stall >= opts.Patience {
					e.Trees = e.Trees[:bestLen]
					break
				}
			}
		}
	}
	return e, nil
}

// Predict evaluates the ensemble on one row.
func (e *Ensemble) Predict(row []float64) float64 {
	y := e.Base
	for _, t := range e.Trees {
		y += e.LearningRate * t.Predict(row)
	}
	return y
}

// PredictBatch evaluates the ensemble on many rows.
func (e *Ensemble) PredictBatch(rows [][]float64) []float64 {
	out := make([]float64, len(rows))
	for i, r := range rows {
		out[i] = e.Predict(r)
	}
	return out
}

// R2 returns the coefficient of determination of the ensemble on (x, y).
func (e *Ensemble) R2(x [][]float64, y []float64) float64 {
	if len(y) == 0 {
		return 0
	}
	pred := e.PredictBatch(x)
	m := meanOf(y)
	var ssRes, ssTot float64
	for i := range y {
		ssRes += (y[i] - pred[i]) * (y[i] - pred[i])
		ssTot += (y[i] - m) * (y[i] - m)
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}
