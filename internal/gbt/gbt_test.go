package gbt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(t *testing.T, got, want, tol float64, name string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (tol %v)", name, got, want, tol)
	}
}

func TestTreeFitsStepFunction(t *testing.T) {
	x := make([][]float64, 200)
	y := make([]float64, 200)
	for i := range x {
		v := float64(i) / 200
		x[i] = []float64{v}
		if v < 0.5 {
			y[i] = 1
		} else {
			y[i] = 5
		}
	}
	tree, err := BuildTree(x, y, TreeOptions{MaxDepth: 2, MinLeaf: 5})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, tree.Predict([]float64{0.1}), 1, 1e-9, "left leaf")
	almost(t, tree.Predict([]float64{0.9}), 5, 1e-9, "right leaf")
	if tree.IsLeaf() {
		t.Fatal("tree should have split")
	}
	almost(t, tree.Threshold, 0.5, 0.01, "split point")
}

func TestTreeDepthAndLeaves(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([][]float64, 500)
	y := make([]float64, 500)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64()}
		y[i] = x[i][0]*3 + x[i][1]*x[i][1]
	}
	tree, err := BuildTree(x, y, TreeOptions{MaxDepth: 4, MinLeaf: 5})
	if err != nil {
		t.Fatal(err)
	}
	if d := tree.Depth(); d > 4 {
		t.Errorf("depth %d exceeds max 4", d)
	}
	if l := tree.Leaves(); l < 2 || l > 16 {
		t.Errorf("leaves = %d", l)
	}
	if tree.Cover != 500 {
		t.Errorf("root cover = %v", tree.Cover)
	}
}

func TestTreeConstantTarget(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{7, 7, 7, 7}
	tree, err := BuildTree(x, y, DefaultTreeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !tree.IsLeaf() {
		t.Error("constant target should be a single leaf")
	}
	almost(t, tree.Predict([]float64{99}), 7, 1e-12, "constant prediction")
}

func TestTreeErrors(t *testing.T) {
	if _, err := BuildTree(nil, nil, DefaultTreeOptions()); err == nil {
		t.Error("empty data should error")
	}
	if _, err := BuildTree([][]float64{{1}}, []float64{1, 2}, DefaultTreeOptions()); err == nil {
		t.Error("mismatched data should error")
	}
	if _, err := BuildTree([][]float64{{1}}, []float64{1}, TreeOptions{MaxDepth: -1}); err == nil {
		t.Error("negative depth should error")
	}
}

func TestBoostingLearnsNonlinear(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 1000
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		a, b := rng.Float64()*4-2, rng.Float64()*4-2
		x[i] = []float64{a, b}
		y[i] = math.Sin(a)*2 + b*b
	}
	e, err := Fit(x[:800], y[:800], x[800:], y[800:], Options{
		Trees: 200, LearningRate: 0.1, Tree: TreeOptions{MaxDepth: 3, MinLeaf: 5}, Patience: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r2 := e.R2(x[800:], y[800:]); r2 < 0.9 {
		t.Errorf("validation R2 = %v, want >= 0.9", r2)
	}
}

func TestBoostingEarlyStops(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 300
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.Float64()}
		y[i] = rng.NormFloat64() // pure noise: validation never improves much
	}
	e, err := Fit(x[:200], y[:200], x[200:], y[200:], Options{
		Trees: 500, LearningRate: 0.3, Tree: TreeOptions{MaxDepth: 3, MinLeaf: 2}, Patience: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Trees) >= 500 {
		t.Errorf("early stopping never triggered; %d trees", len(e.Trees))
	}
}

func TestBoostingErrors(t *testing.T) {
	x := [][]float64{{1}, {2}}
	y := []float64{1, 2}
	if _, err := Fit(nil, nil, nil, nil, DefaultOptions()); err == nil {
		t.Error("empty data should error")
	}
	if _, err := Fit(x, y, nil, nil, Options{Trees: 0, LearningRate: 0.1, Tree: DefaultTreeOptions()}); err == nil {
		t.Error("zero trees should error")
	}
	if _, err := Fit(x, y, nil, nil, Options{Trees: 1, LearningRate: 0, Tree: DefaultTreeOptions()}); err == nil {
		t.Error("zero learning rate should error")
	}
}

func TestExpectedValue(t *testing.T) {
	// Hand-built tree: split on f0 at 0, covers 3/1, values 10 and 20.
	tree := &Node{
		Feature: 0, Threshold: 0, Cover: 4,
		Left:  &Node{Feature: -1, Value: 10, Cover: 3},
		Right: &Node{Feature: -1, Value: 20, Cover: 1},
	}
	almost(t, tree.ExpectedValue(), 12.5, 1e-12, "expected value")
}

// bruteForceShap computes exact Shapley values by enumerating feature
// subsets, using the cover-weighted conditional expectation a tree defines.
func bruteForceShap(e *Ensemble, row []float64) []float64 {
	nf := len(row)
	// value(S) = E[f(x) | x_S = row_S]
	var cond func(n *Node, set uint) float64
	cond = func(n *Node, set uint) float64 {
		if n.IsLeaf() {
			return n.Value
		}
		if set&(1<<uint(n.Feature)) != 0 {
			if row[n.Feature] <= n.Threshold {
				return cond(n.Left, set)
			}
			return cond(n.Right, set)
		}
		return (n.Left.Cover*cond(n.Left, set) + n.Right.Cover*cond(n.Right, set)) / n.Cover
	}
	value := func(set uint) float64 {
		v := e.Base
		for _, t := range e.Trees {
			v += e.LearningRate * cond(t, set)
		}
		return v
	}
	fact := func(k int) float64 {
		f := 1.0
		for i := 2; i <= k; i++ {
			f *= float64(i)
		}
		return f
	}
	phi := make([]float64, nf)
	for i := 0; i < nf; i++ {
		for set := uint(0); set < 1<<uint(nf); set++ {
			if set&(1<<uint(i)) != 0 {
				continue
			}
			size := 0
			for b := 0; b < nf; b++ {
				if set&(1<<uint(b)) != 0 {
					size++
				}
			}
			w := fact(size) * fact(nf-size-1) / fact(nf)
			phi[i] += w * (value(set|1<<uint(i)) - value(set))
		}
	}
	return phi
}

func TestTreeSHAPMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 400
	nf := 3
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		y[i] = 3*x[i][0] + x[i][1]*x[i][2]*5 + rng.NormFloat64()*0.05
	}
	e, err := Fit(x, y, nil, nil, Options{
		Trees: 20, LearningRate: 0.2, Tree: TreeOptions{MaxDepth: 3, MinLeaf: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		row := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		got, _ := e.ShapValues(row)
		want := bruteForceShap(e, row)
		for f := 0; f < nf; f++ {
			if math.Abs(got[f]-want[f]) > 1e-8 {
				t.Fatalf("trial %d feature %d: TreeSHAP %v, brute force %v", trial, f, got[f], want[f])
			}
		}
	}
}

func TestTreeSHAPLocalAccuracy(t *testing.T) {
	// Property: expected + sum(phi) == prediction, for random models/rows.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100
		nf := 2 + rng.Intn(4)
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = make([]float64, nf)
			for j := range x[i] {
				x[i][j] = rng.NormFloat64()
			}
			y[i] = x[i][0]*2 + rng.NormFloat64()
		}
		e, err := Fit(x, y, nil, nil, Options{
			Trees: 10, LearningRate: 0.3, Tree: TreeOptions{MaxDepth: 4, MinLeaf: 2},
		})
		if err != nil {
			return false
		}
		row := make([]float64, nf)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		phi, expected := e.ShapValues(row)
		sum := expected
		for _, v := range phi {
			sum += v
		}
		return math.Abs(sum-e.Predict(row)) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTreeSHAPIrrelevantFeatureGetsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 500
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64()}
		y[i] = 4 * x[i][0] // feature 1 is irrelevant
	}
	e, err := Fit(x, y, nil, nil, Options{
		Trees: 30, LearningRate: 0.2, Tree: TreeOptions{MaxDepth: 3, MinLeaf: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	imp := e.MeanAbsShap(x[:100])
	if imp[1] > imp[0]*0.05 {
		t.Errorf("irrelevant feature importance %v vs relevant %v", imp[1], imp[0])
	}
}

func TestMeanAbsShapEmpty(t *testing.T) {
	e := &Ensemble{Base: 1, LearningRate: 0.1}
	if got := e.MeanAbsShap(nil); got != nil {
		t.Error("empty rows should return nil")
	}
}
