// Package gbt implements gradient-boosted regression trees from scratch:
// CART trees with variance-reduction splitting, Friedman-style boosting on
// squared loss with shrinkage, and the exact TreeSHAP attribution algorithm
// (Lundberg et al. 2020) that the paper uses to rank time series
// characteristics by their influence on TFE (Figure 5).
//
// The package backs two parts of the reproduction: the GBoost forecasting
// model (§3.4) and the characteristic-importance surrogate model (§4.3.1).
package gbt

import (
	"errors"
	"sort"
)

// Node is one node of a regression tree. Leaves have Feature == -1.
type Node struct {
	Feature   int     // split feature index, -1 for a leaf
	Threshold float64 // go left when x[Feature] <= Threshold
	Left      *Node
	Right     *Node
	Value     float64 // leaf prediction
	Cover     float64 // number of training rows that reached this node
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Feature < 0 }

// TreeOptions controls CART growth.
type TreeOptions struct {
	MaxDepth    int // maximum tree depth (root = depth 0)
	MinLeaf     int // minimum rows per leaf
	MinGain     float64
	MaxFeatures int // consider at most this many features per split (0 = all)
}

// DefaultTreeOptions are sensible defaults for boosting weak learners.
func DefaultTreeOptions() TreeOptions {
	return TreeOptions{MaxDepth: 3, MinLeaf: 5}
}

// BuildTree grows a CART regression tree on rows X (row-major) and targets y.
func BuildTree(x [][]float64, y []float64, opts TreeOptions) (*Node, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, errors.New("gbt: empty or mismatched training data")
	}
	if opts.MaxDepth < 0 {
		return nil, errors.New("gbt: negative max depth")
	}
	if opts.MinLeaf < 1 {
		opts.MinLeaf = 1
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	return grow(x, y, idx, 0, opts), nil
}

func grow(x [][]float64, y []float64, idx []int, depth int, opts TreeOptions) *Node {
	n := len(idx)
	var sum float64
	for _, i := range idx {
		sum += y[i]
	}
	node := &Node{Feature: -1, Value: sum / float64(n), Cover: float64(n)}
	if depth >= opts.MaxDepth || n < 2*opts.MinLeaf {
		return node
	}
	bestGain := opts.MinGain
	bestFeature, bestSplit := -1, 0.0
	nf := len(x[idx[0]])
	limit := nf
	if opts.MaxFeatures > 0 && opts.MaxFeatures < nf {
		limit = opts.MaxFeatures
	}
	// Total sum of squares around the node mean (constant per node; gain
	// compares child impurities so only the weighted child terms matter).
	order := make([]int, n)
	for f := 0; f < limit; f++ {
		copy(order, idx)
		feat := f
		sort.Slice(order, func(a, b int) bool { return x[order[a]][feat] < x[order[b]][feat] })
		// Prefix sums over the sorted order.
		var ls, lss float64
		var rs, rss float64
		for _, i := range order {
			rs += y[i]
			rss += y[i] * y[i]
		}
		for k := 0; k < n-1; k++ {
			yi := y[order[k]]
			ls += yi
			lss += yi * yi
			rs -= yi
			rss -= yi * yi
			if k+1 < opts.MinLeaf || n-k-1 < opts.MinLeaf {
				continue
			}
			// Skip non-separable positions (equal feature values).
			if x[order[k]][feat] == x[order[k+1]][feat] {
				continue
			}
			nl, nr := float64(k+1), float64(n-k-1)
			// Gain = parent SSE - (left SSE + right SSE); parent SSE constant.
			childSSE := (lss - ls*ls/nl) + (rss - rs*rs/nr)
			parentSSE := (lss + rss) - (ls+rs)*(ls+rs)/float64(n)
			gain := parentSSE - childSSE
			if gain > bestGain {
				bestGain = gain
				bestFeature = feat
				bestSplit = (x[order[k]][feat] + x[order[k+1]][feat]) / 2
			}
		}
	}
	if bestFeature < 0 {
		return node
	}
	var left, right []int
	for _, i := range idx {
		if x[i][bestFeature] <= bestSplit {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return node
	}
	node.Feature = bestFeature
	node.Threshold = bestSplit
	node.Left = grow(x, y, left, depth+1, opts)
	node.Right = grow(x, y, right, depth+1, opts)
	return node
}

// Predict evaluates the tree on one row.
func (n *Node) Predict(row []float64) float64 {
	for !n.IsLeaf() {
		if row[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Value
}

// Depth returns the tree depth (leaf = 0).
func (n *Node) Depth() int {
	if n.IsLeaf() {
		return 0
	}
	l, r := n.Left.Depth(), n.Right.Depth()
	if l > r {
		return l + 1
	}
	return r + 1
}

// Leaves returns the number of leaves.
func (n *Node) Leaves() int {
	if n.IsLeaf() {
		return 1
	}
	return n.Left.Leaves() + n.Right.Leaves()
}

// meanOf returns the arithmetic mean.
func meanOf(y []float64) float64 {
	var s float64
	for _, v := range y {
		s += v
	}
	return s / float64(len(y))
}

// mse returns the mean squared error between predictions and targets.
func mse(pred, y []float64) float64 {
	var s float64
	for i := range y {
		d := pred[i] - y[i]
		s += d * d
	}
	return s / float64(len(y))
}
