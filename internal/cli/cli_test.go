package cli

import (
	"flag"
	"reflect"
	"testing"
)

func TestBindParsesSharedFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := Bind(fs)
	err := fs.Parse([]string{
		"-parallelism", "4", "-refkernels",
		"-cpuprofile", "cpu.out", "-memprofile", "mem.out",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Common{Parallelism: 4, RefKernels: true, CPUProfile: "cpu.out", MemProfile: "mem.out"}
	if *c != want {
		t.Fatalf("parsed %+v, want %+v", *c, want)
	}
}

func TestBindProfilingOmitsComputeKnobs(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	BindProfiling(fs)
	if fs.Lookup("cpuprofile") == nil || fs.Lookup("memprofile") == nil {
		t.Fatal("profiling flags missing")
	}
	if fs.Lookup("parallelism") != nil || fs.Lookup("refkernels") != nil {
		t.Fatal("compute knobs leaked into the profiling subset")
	}
}

func TestSplitList(t *testing.T) {
	cases := map[string][]string{
		"":                 nil,
		" , ,":             nil,
		"ETTm1":            {"ETTm1"},
		"ETTm1, Weather":   {"ETTm1", "Weather"},
		",Solar , ,Wind, ": {"Solar", "Wind"},
	}
	for in, want := range cases {
		if got := SplitList(in); !reflect.DeepEqual(got, want) {
			t.Errorf("SplitList(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestParsePartition(t *testing.T) {
	good := map[string][2]int{ // input -> {index, workers}
		"1/1":   {0, 1},
		"2/3":   {1, 3},
		"3/3":   {2, 3},
		" 2 /4": {1, 4},
	}
	for in, want := range good {
		index, workers, err := ParsePartition(in)
		if err != nil {
			t.Errorf("ParsePartition(%q): %v", in, err)
			continue
		}
		if index != want[0] || workers != want[1] {
			t.Errorf("ParsePartition(%q) = %d, %d, want %d, %d", in, index, workers, want[0], want[1])
		}
	}
	for _, in := range []string{"", "3", "0/3", "4/3", "-1/3", "a/b", "1/0", "1//2"} {
		if _, _, err := ParsePartition(in); err == nil {
			t.Errorf("ParsePartition(%q) accepted", in)
		}
	}
}

// TestGridArgsRoundTrip: the argv a coordinator renders for its workers
// parses back into the identical grid selection — the property that keeps
// worker and coordinator agreeing on cell keys.
func TestGridArgsRoundTrip(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	g := BindGrid(fs)
	if err := fs.Parse([]string{"-scale", "0.07", "-seed", "9", "-datasets", "ETTm1,Wind", "-models", "Arima"}); err != nil {
		t.Fatal(err)
	}
	fs2 := flag.NewFlagSet("test2", flag.ContinueOnError)
	g2 := BindGrid(fs2)
	if err := fs2.Parse(g.Args()); err != nil {
		t.Fatal(err)
	}
	if *g != *g2 {
		t.Fatalf("round-tripped grid %+v != %+v", *g2, *g)
	}
	c := &Common{Parallelism: 2, Stream: true}
	if o1, o2 := g.Options(c), g2.Options(c); !reflect.DeepEqual(o1, o2) {
		t.Fatalf("options differ: %+v vs %+v", o1, o2)
	}
}
