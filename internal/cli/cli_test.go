package cli

import (
	"flag"
	"reflect"
	"testing"
)

func TestBindParsesSharedFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := Bind(fs)
	err := fs.Parse([]string{
		"-parallelism", "4", "-refkernels",
		"-cpuprofile", "cpu.out", "-memprofile", "mem.out",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Common{Parallelism: 4, RefKernels: true, CPUProfile: "cpu.out", MemProfile: "mem.out"}
	if *c != want {
		t.Fatalf("parsed %+v, want %+v", *c, want)
	}
}

func TestBindProfilingOmitsComputeKnobs(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	BindProfiling(fs)
	if fs.Lookup("cpuprofile") == nil || fs.Lookup("memprofile") == nil {
		t.Fatal("profiling flags missing")
	}
	if fs.Lookup("parallelism") != nil || fs.Lookup("refkernels") != nil {
		t.Fatal("compute knobs leaked into the profiling subset")
	}
}

func TestSplitList(t *testing.T) {
	cases := map[string][]string{
		"":                 nil,
		" , ,":             nil,
		"ETTm1":            {"ETTm1"},
		"ETTm1, Weather":   {"ETTm1", "Weather"},
		",Solar , ,Wind, ": {"Solar", "Wind"},
	}
	for in, want := range cases {
		if got := SplitList(in); !reflect.DeepEqual(got, want) {
			t.Errorf("SplitList(%q) = %v, want %v", in, got, want)
		}
	}
}
