package cli

import (
	"flag"
	"reflect"
	"strings"
	"testing"

	"lossyts/internal/compress"
	"lossyts/internal/timeseries"
)

func TestBindParsesSharedFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := Bind(fs)
	err := fs.Parse([]string{
		"-parallelism", "4", "-refkernels",
		"-cpuprofile", "cpu.out", "-memprofile", "mem.out",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Common{Parallelism: 4, RefKernels: true, CPUProfile: "cpu.out", MemProfile: "mem.out"}
	if *c != want {
		t.Fatalf("parsed %+v, want %+v", *c, want)
	}
}

func TestBindProfilingOmitsComputeKnobs(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	BindProfiling(fs)
	if fs.Lookup("cpuprofile") == nil || fs.Lookup("memprofile") == nil {
		t.Fatal("profiling flags missing")
	}
	if fs.Lookup("parallelism") != nil || fs.Lookup("refkernels") != nil {
		t.Fatal("compute knobs leaked into the profiling subset")
	}
}

func TestSplitList(t *testing.T) {
	cases := map[string][]string{
		"":                 nil,
		" , ,":             nil,
		"ETTm1":            {"ETTm1"},
		"ETTm1, Weather":   {"ETTm1", "Weather"},
		",Solar , ,Wind, ": {"Solar", "Wind"},
	}
	for in, want := range cases {
		if got := SplitList(in); !reflect.DeepEqual(got, want) {
			t.Errorf("SplitList(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestParsePartition(t *testing.T) {
	good := map[string][2]int{ // input -> {index, workers}
		"1/1":   {0, 1},
		"2/3":   {1, 3},
		"3/3":   {2, 3},
		" 2 /4": {1, 4},
	}
	for in, want := range good {
		index, workers, err := ParsePartition(in)
		if err != nil {
			t.Errorf("ParsePartition(%q): %v", in, err)
			continue
		}
		if index != want[0] || workers != want[1] {
			t.Errorf("ParsePartition(%q) = %d, %d, want %d, %d", in, index, workers, want[0], want[1])
		}
	}
	for _, in := range []string{"", "3", "0/3", "4/3", "-1/3", "a/b", "1/0", "1//2"} {
		if _, _, err := ParsePartition(in); err == nil {
			t.Errorf("ParsePartition(%q) accepted", in)
		}
	}
}

// TestGridArgsRoundTrip: the argv a coordinator renders for its workers
// parses back into the identical grid selection — the property that keeps
// worker and coordinator agreeing on cell keys.
func TestGridArgsRoundTrip(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	g := BindGrid(fs)
	if err := fs.Parse([]string{"-scale", "0.07", "-seed", "9", "-datasets", "ETTm1,Wind", "-models", "Arima", "-methods", "PMC,CAMEO,LFZIP"}); err != nil {
		t.Fatal(err)
	}
	fs2 := flag.NewFlagSet("test2", flag.ContinueOnError)
	g2 := BindGrid(fs2)
	if err := fs2.Parse(g.Args()); err != nil {
		t.Fatal(err)
	}
	if *g != *g2 {
		t.Fatalf("round-tripped grid %+v != %+v", *g2, *g)
	}
	c := &Common{Parallelism: 2, Stream: true}
	if o1, o2 := g.Options(c), g2.Options(c); !reflect.DeepEqual(o1, o2) {
		t.Fatalf("options differ: %+v vs %+v", o1, o2)
	}
}

func TestGridMethodsFlag(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	g := BindGrid(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	c := &Common{}
	// Default: the paper's fixed lossy grid, untouched.
	if got := g.Options(c).Methods; got != nil {
		t.Fatalf("default -methods must leave Options.Methods nil (paper grid), got %v", got)
	}
	g.Methods = "PMC, LFZIP"
	if got := g.Options(c).Methods; !reflect.DeepEqual(got, []compress.Method{"PMC", "LFZIP"}) {
		t.Fatalf("explicit -methods parsed to %v", got)
	}
	g.Methods = "all"
	if got := g.Options(c).Methods; !reflect.DeepEqual(got, compress.LossyMethods()) {
		t.Fatalf("-methods all = %v, want LossyMethods %v", got, compress.LossyMethods())
	}
}

// extcliCompressor is a minimal external codec registered only by this test
// binary: the regression guard that a registration — with no cli/core/cmd
// edits at all — reaches every flag surface.
type extcliCompressor struct{}

func (extcliCompressor) Method() compress.Method { return "EXTCLI" }
func (extcliCompressor) Compress(s *timeseries.Series, epsilon float64) (*compress.Compressed, error) {
	return compress.PMC{}.Compress(s, epsilon)
}

func init() {
	compress.Register(compress.Registration{
		Method: "EXTCLI",
		Code:   102,
		Lossy:  true,
		New:    func() (compress.Compressor, error) { return extcliCompressor{}, nil },
		Decode: func(body []byte, count int) ([]float64, error) {
			return nil, nil
		},
	})
}

// TestExternalCodecReachesFlagSurfaces: a Lossy registration must show up
// in every registry-derived flag surface — grid "-methods all", the
// monitor sweep default, and the rendered method lists in help text.
func TestExternalCodecReachesFlagSurfaces(t *testing.T) {
	const ext = compress.Method("EXTCLI")
	found := false
	for _, m := range ParseMethods("all") {
		if m == ext {
			found = true
		}
	}
	if !found {
		t.Fatal("-methods all does not include the externally registered codec")
	}
	g := &Grid{Methods: "all"}
	found = false
	for _, m := range g.Options(&Common{}).Methods {
		if m == ext {
			found = true
		}
	}
	if !found {
		t.Fatal("Grid.Options(-methods all) does not include the externally registered codec")
	}
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	mon := BindMonitor(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(mon.Methods, string(ext)) {
		t.Fatalf("monitor sweep default %q does not include the externally registered codec", mon.Methods)
	}
	if !strings.Contains(MethodList(compress.Registered()), string(ext)) {
		t.Fatal("rendered method list (cmd help text source) does not include the externally registered codec")
	}
}
