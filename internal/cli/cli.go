// Package cli holds the flag plumbing the lossyts commands share: the
// parallelism and kernel-mode knobs of the compute-heavy tools and the
// CPU/heap profile writers every command offers. Binding them here keeps
// flag names, defaults, and help text identical across binaries.
package cli

import (
	"flag"
	"fmt"
	"runtime"
	"strconv"
	"strings"

	"lossyts/internal/compress"
	"lossyts/internal/core"
	"lossyts/internal/nn"
	"lossyts/internal/profiling"
)

// Common carries the shared command-line options after flag parsing.
type Common struct {
	// Parallelism bounds worker pools (0 = all CPUs, 1 = sequential).
	// Grid results are bit-identical at every setting.
	Parallelism int
	// RefKernels selects the reference (unblocked, unfused, unpooled) nn
	// kernels instead of the fast path.
	RefKernels bool
	// CPUProfile and MemProfile are profile output paths ("" = off).
	CPUProfile string
	MemProfile string
	// Stream routes the data plane through chunked streaming (identical
	// results, bounded ingest/compress memory); ChunkSize is the chunk
	// length in points (0 = the timeseries default).
	Stream    bool
	ChunkSize int
	// Store is the path of a cell-addressed result store ("" = off):
	// completed grid cells are checkpointed there as they finish and
	// reused by later runs (see core.Options.Store).
	Store string
}

// BindProfiling registers the profiling flags on fs and returns the
// receiver the parsed values land in. Commands without compute knobs
// (gendata, tscompress, nnbench) use this subset.
func BindProfiling(fs *flag.FlagSet) *Common {
	c := &Common{}
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	return c
}

// Bind registers the full shared flag set: profiling plus the parallelism
// and kernel-mode knobs of the evaluation commands.
func Bind(fs *flag.FlagSet) *Common {
	c := BindProfiling(fs)
	fs.IntVar(&c.Parallelism, "parallelism", 0, "worker bound (0 = all CPUs, 1 = sequential; results are identical)")
	fs.BoolVar(&c.RefKernels, "refkernels", false, "use the reference (unblocked, unfused, unpooled) nn kernels")
	return c
}

// BindStream registers the streaming data-plane flags. Commands whose data
// path has a chunked mode (tscompress, evalimpl, streambench) add these on
// top of their other bindings; results are identical in either mode, only
// the memory profile changes.
func (c *Common) BindStream(fs *flag.FlagSet) {
	fs.BoolVar(&c.Stream, "stream", false, "use the chunked streaming data plane (identical results, bounded memory)")
	fs.IntVar(&c.ChunkSize, "chunk", 0, "streaming chunk length in points (0 = default)")
}

// BindStore registers the result-store flag. Commands that evaluate grid
// cells through the harness (evalimpl, tsforecast) offer it: with a store,
// every completed cell is checkpointed durably, an interrupted run resumes
// where it stopped, and a grown grid computes only its delta.
func (c *Common) BindStore(fs *flag.FlagSet) {
	fs.StringVar(&c.Store, "store", "", "cell-addressed result store: checkpoint finished cells here, resume interrupted runs, recompute only grid deltas")
}

// Grid carries the grid-selection flags shared by the commands that run
// the evaluation grid (evalimpl, gridworker), so a coordinator and the
// partition workers it spawns parse identical grids from identical flags.
type Grid struct {
	// Scale shrinks dataset lengths ((0, 1]; overridden to 1 by Full).
	Scale float64
	// Seed is the base random seed.
	Seed int64
	// Full selects the paper-scale configuration.
	Full bool
	// Datasets and Models are comma-separated subset selections ("" = all).
	Datasets string
	Models   string
	// Methods selects the compression-method axis: "" keeps the paper's
	// fixed lossy grid, "all" takes every registered parameter-free lossy
	// codec (compress.LossyMethods), and a comma-separated list names
	// registered methods explicitly (GORILLA included, if asked for).
	Methods string
}

// BindGrid registers the grid-selection flag group.
func BindGrid(fs *flag.FlagSet) *Grid {
	g := &Grid{}
	fs.Float64Var(&g.Scale, "scale", 0.03, "dataset length scale in (0, 1]")
	fs.Int64Var(&g.Seed, "seed", 1, "base random seed")
	fs.BoolVar(&g.Full, "full", false, "paper-scale run: full lengths, 10/5 seeds (very slow)")
	fs.StringVar(&g.Datasets, "datasets", "", "comma-separated dataset subset (default: all six)")
	fs.StringVar(&g.Models, "models", "", "comma-separated model subset (default: all seven)")
	fs.StringVar(&g.Methods, "methods", "",
		"comma-separated compression methods, or \"all\" for every registered lossy codec (default: paper grid "+
			MethodList(compress.Methods)+"; registered: "+MethodList(compress.Registered())+")")
	return g
}

// Options resolves the grid flags plus the shared compute flags into a core
// option set — the one construction path every grid-running command uses,
// so a worker can never disagree with its coordinator about which grid (and
// therefore which cell keys) the flags mean.
func (g *Grid) Options(c *Common) core.Options {
	opts := core.DefaultOptions()
	if g.Full {
		opts = core.PaperOptions()
		opts.Scale = 1
	} else {
		opts.Scale = g.Scale
	}
	opts.Seed = g.Seed
	opts.Parallelism = c.Parallelism
	opts.ReferenceKernels = c.RefKernels
	opts.Stream = c.Stream
	opts.ChunkSize = c.ChunkSize
	opts.Store = c.Store
	if g.Datasets != "" {
		opts.Datasets = SplitList(g.Datasets)
	}
	if g.Models != "" {
		opts.Models = SplitList(g.Models)
	}
	if g.Methods != "" {
		opts.Methods = ParseMethods(g.Methods)
	}
	return opts
}

// Args renders the group back into command-line arguments; the coordinator
// uses it to hand spawned workers exactly the grid it parsed.
func (g *Grid) Args() []string {
	args := []string{
		"-scale", strconv.FormatFloat(g.Scale, 'g', -1, 64),
		"-seed", strconv.FormatInt(g.Seed, 10),
	}
	if g.Full {
		args = append(args, "-full")
	}
	if g.Datasets != "" {
		args = append(args, "-datasets", g.Datasets)
	}
	if g.Models != "" {
		args = append(args, "-models", g.Models)
	}
	if g.Methods != "" {
		args = append(args, "-methods", g.Methods)
	}
	return args
}

// ParseMethods resolves a -methods flag value: "all" expands to every
// registered parameter-free lossy codec, anything else splits as a
// comma-separated list of registered method names. Unknown names surface
// naturally as UnknownMethodError when the pipeline constructs the
// compressor, with the registered set in the message.
func ParseMethods(s string) []compress.Method {
	if strings.EqualFold(strings.TrimSpace(s), "all") {
		return compress.LossyMethods()
	}
	var out []compress.Method
	for _, name := range SplitList(s) {
		out = append(out, compress.Method(name))
	}
	return out
}

// MethodList renders methods as the comma-separated form the -methods
// flags accept.
func MethodList(methods []compress.Method) string {
	parts := make([]string, len(methods))
	for i, m := range methods {
		parts[i] = string(m)
	}
	return strings.Join(parts, ",")
}

// ParsePartition parses the CLI's 1-based "i/n" partition syntax (e.g.
// "2/3": partition 2 of 3) into the 0-based index and worker count of
// core's WorkSet.Partition API.
func ParsePartition(s string) (index, workers int, err error) {
	lhs, rhs, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("partition %q: want i/n, e.g. 2/3", s)
	}
	i, err1 := strconv.Atoi(strings.TrimSpace(lhs))
	n, err2 := strconv.Atoi(strings.TrimSpace(rhs))
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("partition %q: want i/n with integers, e.g. 2/3", s)
	}
	if n < 1 || i < 1 || i > n {
		return 0, 0, fmt.Errorf("partition %q: need 1 <= i <= n", s)
	}
	return i - 1, n, nil
}

// Serve carries the serving-plane options (cmd/tsserve) after flag parsing.
type Serve struct {
	// Addr is the listen address of the HTTP daemon.
	Addr string
	// Cache is the path of the durable result cache ("" = singleflight
	// dedupe only, nothing survives a restart).
	Cache string
	// GridStore optionally points at a completed evaluation-grid store so
	// /v1/recommend can answer dataset-level queries from it.
	GridStore string
	// MaxBodyKB caps each request body in KiB (0 = the serve default).
	MaxBodyKB int
}

// BindServe registers the serving-plane flag group.
func BindServe(fs *flag.FlagSet) *Serve {
	s := &Serve{}
	fs.StringVar(&s.Addr, "addr", "localhost:8750", "listen address")
	fs.StringVar(&s.Cache, "cache", "", "durable result cache (cell-store path; empty = in-flight dedupe only)")
	fs.StringVar(&s.GridStore, "gridstore", "", "completed evaluation-grid store for /v1/recommend dataset queries (read-only)")
	fs.IntVar(&s.MaxBodyKB, "maxbody", 0, "per-request body cap in KiB (0 = server default)")
	return s
}

// LoadBench carries the load-generator options (cmd/loadbench) after flag
// parsing.
type LoadBench struct {
	// URL is the base URL of the tsserve instance under test.
	URL string
	// Out is the JSON report path.
	Out string
	// Concurrency is the number of closed-loop workers.
	Concurrency int
	// Keys is the number of distinct request bodies (cold-phase size).
	Keys int
	// Warm is the number of warm-phase requests (served from cache).
	Warm int
	// Quick shrinks everything to a CI smoke run.
	Quick bool
}

// BindLoadBench registers the load-generator flag group.
func BindLoadBench(fs *flag.FlagSet) *LoadBench {
	l := &LoadBench{}
	fs.StringVar(&l.URL, "url", "http://localhost:8750", "base URL of the tsserve under test")
	fs.StringVar(&l.Out, "out", "BENCH_serve.json", "output JSON path")
	fs.IntVar(&l.Concurrency, "concurrency", 8, "closed-loop worker count")
	fs.IntVar(&l.Keys, "keys", 16, "distinct request bodies (cold-phase size)")
	fs.IntVar(&l.Warm, "warm", 256, "warm-phase request count")
	fs.BoolVar(&l.Quick, "quick", false, "smoke mode: few keys, short warm phase")
	return l
}

// Monitor carries the online-session options (cmd/tsmonitor) after flag
// parsing.
type Monitor struct {
	// Dataset, Scale, and Seed select the stream.
	Dataset string
	Scale   float64
	Seed    int64
	// Method and Eps select the lossy channel of a single session.
	Method string
	Eps    float64
	// Model optionally names an incrementally-updated forecaster.
	Model string
	// Chunk is the tick granularity in points (0 = default).
	Chunk int
	// Spikes, DriftAt, and Threshold control ground-truth injection and
	// the anomaly cut-off (see core.SessionOptions).
	Spikes    int
	DriftAt   float64
	Threshold float64
	// UpdateEvery is the model-update stride in points (0 = 4·period).
	UpdateEvery int
	// Store is a checkpoint cell store; a killed session restarted with
	// the same flags and store resumes from its last complete tick.
	Store string
	// Out is the report path ("" = stdout in single mode).
	Out string
	// Sweep switches to sweep mode: Methods × Bounds sessions, merged into
	// one BENCH_monitor.json-shaped report.
	Sweep   bool
	Methods string
	Bounds  string
}

// BindMonitor registers the online-session flag group.
func BindMonitor(fs *flag.FlagSet) *Monitor {
	m := &Monitor{}
	fs.StringVar(&m.Dataset, "dataset", "ElecDem", "dataset to stream")
	fs.Float64Var(&m.Scale, "scale", 0.01, "dataset length scale in (0, 1]")
	fs.Int64Var(&m.Seed, "seed", 1, "base random seed")
	fs.StringVar(&m.Method, "method", "PMC", "compression method of a single session")
	fs.Float64Var(&m.Eps, "eps", 0.05, "error bound of a single session")
	fs.StringVar(&m.Model, "model", "", "forecasting model updated online (empty = monitors only)")
	fs.IntVar(&m.Chunk, "chunk", 0, "tick granularity in points (0 = default)")
	fs.IntVar(&m.Spikes, "spikes", 8, "ground-truth spikes injected after warmup")
	fs.Float64Var(&m.DriftAt, "driftat", 0.7, "inject a level shift at this stream fraction (0 = none)")
	fs.Float64Var(&m.Threshold, "threshold", 9, "anomaly robust-z cut-off")
	fs.IntVar(&m.UpdateEvery, "updateevery", 0, "model update stride in points (0 = 4 periods)")
	fs.StringVar(&m.Store, "store", "", "checkpoint cell store: resume a killed session from its last tick")
	fs.StringVar(&m.Out, "out", "", "report output path (empty = stdout; sweep default BENCH_monitor.json)")
	fs.BoolVar(&m.Sweep, "sweep", false, "sweep methods x bounds instead of one session")
	fs.StringVar(&m.Methods, "methods", MethodList(compress.LossyMethods()),
		"sweep: comma-separated methods, or \"all\" for every registered lossy codec")
	fs.StringVar(&m.Bounds, "bounds", "0.01,0.05,0.1", "sweep: comma-separated error bounds")
	return m
}

// SessionOptions resolves the monitor flags into the core option set of a
// single session (sweep mode overrides Method/Eps per cell).
func (m *Monitor) SessionOptions() core.SessionOptions {
	return core.SessionOptions{
		Dataset:          m.Dataset,
		Scale:            m.Scale,
		Seed:             m.Seed,
		Method:           compress.Method(m.Method),
		Epsilon:          m.Eps,
		Model:            m.Model,
		ChunkSize:        m.Chunk,
		Spikes:           m.Spikes,
		DriftAt:          m.DriftAt,
		AnomalyThreshold: m.Threshold,
		UpdateEvery:      m.UpdateEvery,
		Store:            m.Store,
	}
}

// Start applies the kernel mode and starts the requested profilers. The
// returned stop function flushes the profiles and must run on every exit
// path — os.Exit skips defers, so callers invoke it explicitly before
// exiting non-zero.
func (c *Common) Start() (stop func() error, err error) {
	nn.UseReferenceKernels(c.RefKernels)
	return profiling.Start(c.CPUProfile, c.MemProfile)
}

// ApplyGOMAXPROCS caps the runtime's thread parallelism to the flag value.
// Single-run commands (tsforecast) use it as the analogue of the harness
// worker bound; 0 leaves the runtime default untouched.
func (c *Common) ApplyGOMAXPROCS() {
	if c.Parallelism > 0 {
		runtime.GOMAXPROCS(c.Parallelism)
	}
}

// SplitList parses a comma-separated flag value into its non-empty,
// trimmed elements (nil for an empty list).
func SplitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
