package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"

	"lossyts/internal/compress"
	"lossyts/internal/core"
	"lossyts/internal/forecast"
	"lossyts/internal/stats"
	"lossyts/internal/timeseries"
)

// seriesParams is the (start, interval) geometry every value-body endpoint
// shares. The bounds mirror the payload header fields (32-bit start, 16-bit
// interval), so a request that compresses cleanly can always be re-encoded.
type seriesParams struct {
	start    int64
	interval int64
}

func readSeriesParams(r *http.Request) (seriesParams, error) {
	start, err := intParam(r, "start", 0)
	if err != nil {
		return seriesParams{}, err
	}
	interval, err := intParam(r, "interval", 60)
	if err != nil {
		return seriesParams{}, err
	}
	if start < 0 || start > math.MaxUint32 {
		return seriesParams{}, badRequest("parameter start: %d outside the 32-bit timestamp range", start)
	}
	if interval < 1 || interval > math.MaxUint16 {
		return seriesParams{}, badRequest("parameter interval: %d outside [1, %d]", interval, math.MaxUint16)
	}
	return seriesParams{start: start, interval: interval}, nil
}

// methodParam resolves the method query parameter against the compressor
// registry; unknown names surface the registry's typed *UnknownMethodError
// (→ 400).
func methodParam(r *http.Request) (compress.Method, compress.Compressor, error) {
	name := r.URL.Query().Get("method")
	if name == "" {
		return "", nil, badRequest("parameter method is required (registered: %v)", compress.Registered())
	}
	m := compress.Method(name)
	comp, err := compress.New(m)
	if err != nil {
		return "", nil, err
	}
	return m, comp, nil
}

// compressRecord is the cached form of one compression result — everything
// the response (headers + binary payload) is rebuilt from, whether the
// record was computed just now or read back from the store.
type compressRecord struct {
	Method   compress.Method `json:"method"`
	Epsilon  float64         `json:"epsilon"`
	N        int             `json:"n"`
	Segments int             `json:"segments"`
	Start    int64           `json:"start"`
	Interval int64           `json:"interval"`
	Payload  []byte          `json:"payload"`
}

// newEncoder returns a streaming encoder for m, falling back to the
// buffered adapter for registered methods without an incremental kernel.
func newEncoder(m compress.Method, comp compress.Compressor, sp seriesParams, eps float64) (*compress.StreamEncoder, error) {
	enc, err := compress.NewStreamEncoderAt(m, sp.start, sp.interval, eps)
	if err == nil {
		return enc, nil
	}
	return compress.NewBufferedStreamEncoder(comp, sp.start, sp.interval, eps)
}

// handleCompress implements POST /v1/compress?method=&eps=&start=&interval=.
// The body is a stream of numbers; the response body is the compressed
// payload (the same bytes batch compression would produce), with the
// metadata in X-Lossyts-* headers.
func (s *Server) handleCompress(w http.ResponseWriter, r *http.Request) error {
	ctx := r.Context()
	m, comp, err := methodParam(r)
	if err != nil {
		return err
	}
	eps, err := floatParam(r, "eps", 0.1)
	if err != nil {
		return err
	}
	if eps < 0 {
		return badRequest("parameter eps: negative error bound %v", eps)
	}
	sp, err := readSeriesParams(r)
	if err != nil {
		return err
	}
	rh := newRequestHash("compress")
	rh.param("method", m)
	rh.param("eps", eps)
	rh.param("start", sp.start)
	rh.param("interval", sp.interval)
	values, err := readValues(ctx, r.Body, rh, s.opts.ChunkSize)
	if err != nil {
		return err
	}
	out, err := s.cached(ctx, w, rh.key(), func() ([]byte, error) {
		enc, err := newEncoder(m, comp, sp, eps)
		if err != nil {
			return nil, err
		}
		defer enc.Release()
		if err := chunksOf(ctx, values, sp.start, sp.interval, s.opts.ChunkSize, enc.PushChunk); err != nil {
			return nil, err
		}
		// Close into a pooled request buffer; the payload aliases it, and
		// json.Marshal copies, so the buffer goes straight back to the pool.
		buf := compress.GetBytes(4096)
		c, err := enc.CloseAppend(buf)
		if err != nil {
			compress.PutBytes(buf)
			return nil, err
		}
		rec, err := json.Marshal(compressRecord{
			Method: c.Method, Epsilon: c.Epsilon, N: c.N, Segments: c.Segments,
			Start: sp.start, Interval: sp.interval, Payload: c.Payload,
		})
		compress.PutBytes(c.Payload)
		return rec, err
	})
	if err != nil {
		return err
	}
	var rec compressRecord
	if err := json.Unmarshal(out, &rec); err != nil {
		return err
	}
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("X-Lossyts-Method", string(rec.Method))
	h.Set("X-Lossyts-Epsilon", strconv.FormatFloat(rec.Epsilon, 'g', -1, 64))
	h.Set("X-Lossyts-Points", strconv.Itoa(rec.N))
	h.Set("X-Lossyts-Segments", strconv.Itoa(rec.Segments))
	h.Set("X-Lossyts-Start", strconv.FormatInt(rec.Start, 10))
	h.Set("X-Lossyts-Interval", strconv.FormatInt(rec.Interval, 10))
	_, err = w.Write(rec.Payload)
	return err
}

// handleDecompress implements POST /v1/decompress?method=&chunk=. The body
// is a compressed payload (as /v1/compress returned it); the response
// streams the reconstructed values as text, one per line, chunk by chunk —
// the response never materialises the full series.
func (s *Server) handleDecompress(w http.ResponseWriter, r *http.Request) error {
	ctx := r.Context()
	m, _, err := methodParam(r)
	if err != nil {
		return err
	}
	chunk, err := intParam(r, "chunk", int64(s.opts.ChunkSize))
	if err != nil {
		return err
	}
	body, err := readRaw(r.Body, discard{})
	if err != nil {
		return err
	}
	dec, err := compress.NewStreamDecoder(&compress.Compressed{Method: m, Payload: body}, int(chunk))
	if err != nil {
		return badRequest("invalid payload: %v", err)
	}
	defer dec.Release()
	s.computations.Add(1)
	h := w.Header()
	h.Set("Content-Type", "text/plain; charset=utf-8")
	h.Set("X-Lossyts-Points", strconv.Itoa(dec.Len()))
	h.Set("X-Lossyts-Start", strconv.FormatInt(dec.Start(), 10))
	h.Set("X-Lossyts-Interval", strconv.FormatInt(dec.Interval(), 10))
	bw := bufio.NewWriter(w)
	var line []byte
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		c, ok := dec.Next()
		if !ok {
			break
		}
		for _, v := range c.Values {
			line = strconv.AppendFloat(line[:0], v, 'g', -1, 64)
			line = append(line, '\n')
			if _, err := bw.Write(line); err != nil {
				return err
			}
		}
	}
	if err := dec.Err(); err != nil {
		// The status line is long gone; terminate the body with an explicit
		// error marker so a consumer never mistakes a truncated stream for a
		// complete one.
		fmt.Fprintf(bw, "# decode error: %v\n", err)
	}
	return bw.Flush()
}

// discard is io.Discard without the io import gymnastics for a hash slot.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// metricsJSON renders stats.Metrics with stable lowercase keys.
type metricsJSON struct {
	R     float64 `json:"r"`
	RSE   float64 `json:"rse"`
	RMSE  float64 `json:"rmse"`
	NRMSE float64 `json:"nrmse"`
}

func toMetricsJSON(m stats.Metrics) metricsJSON {
	return metricsJSON{R: m.R, RSE: m.RSE, RMSE: m.RMSE, NRMSE: m.NRMSE}
}

// forecastResponse is /v1/forecast's JSON body: the model's accuracy on the
// raw series, and — when a compression operating point was given — the
// compression outcome and the forecast impact (the paper's TFE, Eq. 2) of
// training-data-faithful forecasts over the reconstructed inputs.
type forecastResponse struct {
	Model   string `json:"model"`
	N       int    `json:"n"`
	Input   int    `json:"input"`
	Horizon int    `json:"horizon"`
	Windows int    `json:"windows"`

	Baseline metricsJSON `json:"baseline"`

	Method      compress.Method `json:"method,omitempty"`
	Epsilon     float64         `json:"epsilon,omitempty"`
	CR          float64         `json:"cr,omitempty"`
	TE          *metricsJSON    `json:"te,omitempty"`
	Transformed *metricsJSON    `json:"transformed,omitempty"`
	TFE         *float64        `json:"tfe,omitempty"`
}

// scoreWindows predicts every window and scores the flattened forecasts
// against the flattened targets (calculateMetrics of the paper's
// Algorithm 1, as the core harness does).
func scoreWindows(model forecast.Model, ws *timeseries.WindowSet) (stats.Metrics, error) {
	preds, err := model.Predict(ws.Inputs())
	if err != nil {
		return stats.Metrics{}, err
	}
	var x, y []float64
	for i, p := range preds {
		y = append(y, p...)
		x = append(x, ws.Windows[i].Target...)
	}
	return stats.Evaluate(x, y)
}

// handleForecast implements POST /v1/forecast?model=&method=&eps=&... —
// one grid cell, on the client's own series, as a request: split the series
// as the paper does (70/10/20), train the model on the raw training data,
// and score forecasts over raw and (optionally) reconstructed test inputs.
func (s *Server) handleForecast(w http.ResponseWriter, r *http.Request) error {
	ctx := r.Context()
	modelName := r.URL.Query().Get("model")
	if modelName == "" {
		return badRequest("parameter model is required (registered: %v)", forecast.Registered())
	}
	cfg := s.opts.Forecast
	for _, p := range []struct {
		name string
		dst  *int
	}{
		{"input", &cfg.InputLen},
		{"horizon", &cfg.Horizon},
		{"period", &cfg.SeasonalPeriod},
		{"epochs", &cfg.Epochs},
	} {
		v, err := intParam(r, p.name, int64(*p.dst))
		if err != nil {
			return err
		}
		if v < 0 {
			return badRequest("parameter %s: must be non-negative", p.name)
		}
		*p.dst = int(v)
	}
	seed, err := intParam(r, "seed", cfg.Seed)
	if err != nil {
		return err
	}
	cfg.Seed = seed
	// Resolve the model now so an unknown name is a typed 400 before any
	// body is read or any training happens.
	if _, err := forecast.New(modelName, cfg); err != nil {
		return err
	}
	var (
		method compress.Method
		comp   compress.Compressor
	)
	if r.URL.Query().Get("method") != "" {
		if method, comp, err = methodParam(r); err != nil {
			return err
		}
	}
	eps, err := floatParam(r, "eps", 0.1)
	if err != nil {
		return err
	}
	if eps < 0 {
		return badRequest("parameter eps: negative error bound %v", eps)
	}
	sp, err := readSeriesParams(r)
	if err != nil {
		return err
	}

	rh := newRequestHash("forecast")
	rh.param("model", modelName)
	rh.param("cfg", cfg)
	rh.param("method", method)
	rh.param("eps", eps)
	rh.param("start", sp.start)
	rh.param("interval", sp.interval)
	values, err := readValues(ctx, r.Body, rh, s.opts.ChunkSize)
	if err != nil {
		return err
	}

	out, err := s.cached(ctx, w, rh.key(), func() ([]byte, error) {
		return s.computeForecast(ctx, modelName, cfg, method, comp, eps, sp, values)
	})
	if err != nil {
		return err
	}
	w.Header().Set("Content-Type", "application/json")
	_, err = w.Write(out)
	return err
}

// computeForecast is the expensive heart of /v1/forecast — the part the
// cache and singleflight layers protect.
func (s *Server) computeForecast(ctx context.Context, modelName string, cfg forecast.Config, method compress.Method, comp compress.Compressor, eps float64, sp seriesParams, values []float64) ([]byte, error) {
	series := timeseries.New("request", sp.start, sp.interval, values)
	train, val, test, err := series.Split(0.7, 0.1, 0.2)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	if cfg.InputLen >= test.Len()-cfg.Horizon {
		return nil, badRequest("series too short: the test subset has %d points, need more than input %d + horizon %d — send at least %d values",
			test.Len(), cfg.InputLen, cfg.Horizon, (cfg.InputLen+cfg.Horizon+1)*5)
	}
	var scaler timeseries.StandardScaler
	if err := scaler.Fit(train.Values); err != nil {
		return nil, badRequest("%v", err)
	}
	scTrain := scaler.Transform(train.Values)
	scVal := scaler.Transform(val.Values)
	scTest := scaler.Transform(test.Values)

	model, err := forecast.New(modelName, cfg)
	if err != nil {
		return nil, err
	}
	if err := forecast.FitContext(ctx, model, scTrain, scVal); err != nil {
		return nil, err
	}
	stride := cfg.Horizon
	rawWindows, err := timeseries.MakeWindows(scTest, cfg.InputLen, cfg.Horizon, stride)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	if pa, ok := model.(forecast.PhaseAware); ok && cfg.SeasonalPeriod > 0 {
		pa.SetWindowPhase((train.Len()+val.Len())%cfg.SeasonalPeriod, stride)
	}
	base, err := scoreWindows(model, rawWindows)
	if err != nil {
		return nil, err
	}
	resp := forecastResponse{
		Model:    modelName,
		N:        series.Len(),
		Input:    cfg.InputLen,
		Horizon:  cfg.Horizon,
		Windows:  len(rawWindows.Windows),
		Baseline: toMetricsJSON(base),
	}
	if method != "" {
		// The compression leg runs through the chunked plane — identical
		// bytes to batch compression, bounded codec state.
		enc, err := newEncoder(method, comp, seriesParams{start: test.Start, interval: test.Interval}, eps)
		if err != nil {
			return nil, err
		}
		if err := chunksOf(ctx, test.Values, test.Start, test.Interval, s.opts.ChunkSize, enc.PushChunk); err != nil {
			return nil, err
		}
		buf := compress.GetBytes(4096)
		c, err := enc.CloseAppend(buf)
		if err != nil {
			compress.PutBytes(buf)
			return nil, err
		}
		cr, err := compress.Ratio(test, c)
		if err != nil {
			return nil, err
		}
		sdec, err := compress.NewStreamDecoder(c, s.opts.ChunkSize)
		if err != nil {
			return nil, err
		}
		// The decoder gunzipped the payload into its own buffer, so the
		// request-scoped payload buffer and the kernel scratch go back now.
		compress.PutBytes(c.Payload)
		enc.Release()
		dec, err := timeseries.Collect("reconstructed", sdec)
		sdec.Release()
		if err != nil {
			return nil, err
		}
		te, err := stats.Evaluate(test.Values, dec.Values)
		if err != nil {
			return nil, err
		}
		pairs, err := timeseries.MakePairedWindows(scaler.Transform(dec.Values), scTest, cfg.InputLen, cfg.Horizon, stride)
		if err != nil {
			return nil, err
		}
		tm, err := scoreWindows(model, pairs)
		if err != nil {
			return nil, err
		}
		resp.Method = method
		resp.Epsilon = c.Epsilon
		resp.CR = cr
		teJSON := toMetricsJSON(te)
		tmJSON := toMetricsJSON(tm)
		resp.TE = &teJSON
		resp.Transformed = &tmJSON
		if tfe, err := stats.TFE(tm.NRMSE, base.NRMSE); err == nil {
			resp.TFE = &tfe
		}
	}
	return json.Marshal(resp)
}

// recommendCandidate is one (method, bound) operating point of a series
// sweep.
type recommendCandidate struct {
	Method  compress.Method `json:"method"`
	Epsilon float64         `json:"epsilon"`
	CR      float64         `json:"cr"`
	TENRMSE float64         `json:"te_nrmse"`
	OK      bool            `json:"ok"` // within the TE tolerance
}

// recommendResponse is /v1/recommend's JSON body, for both modes.
type recommendResponse struct {
	Source string `json:"source"` // "series" or "grid"
	Found  bool   `json:"found"`

	// Series mode.
	MaxTE      float64              `json:"maxte,omitempty"`
	Candidates []recommendCandidate `json:"candidates,omitempty"`

	// Grid mode.
	Dataset string  `json:"dataset,omitempty"`
	MaxTFE  float64 `json:"maxtfe,omitempty"`
	TFE     float64 `json:"tfe,omitempty"`

	Method  compress.Method `json:"method,omitempty"`
	Epsilon float64         `json:"epsilon"`
	CR      float64         `json:"cr,omitempty"`
	TE      float64         `json:"te,omitempty"`
}

// handleRecommend implements POST /v1/recommend. Two modes:
//
//   - ?dataset=&maxtfe= — answer from the precomputed evaluation grid
//     (core.Recommend over the read-only grid store): the paper's full
//     TFE-aware recommendation, served in microseconds.
//   - body of values, ?maxte= — sweep methods × error bounds over the
//     client's own series and return the highest-CR point whose
//     reconstruction error (NRMSE) stays within the tolerance. No model
//     training; this is the compression-side recommendation.
func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) error {
	ctx := r.Context()
	if dataset := r.URL.Query().Get("dataset"); dataset != "" {
		return s.recommendFromGrid(w, r, dataset)
	}
	maxTE, err := floatParam(r, "maxte", 0.05)
	if err != nil {
		return err
	}
	sp, err := readSeriesParams(r)
	if err != nil {
		return err
	}
	// Default to every registered parameter-free lossy codec — the registry
	// is the source of truth, so a newly landed codec (CAMEO, LFZip, or an
	// external registration) is recommendable without touching this handler.
	methods := compress.LossyMethods()
	if raw := r.URL.Query().Get("methods"); raw != "" {
		methods = nil
		for _, name := range strings.Split(raw, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			m := compress.Method(name)
			if _, err := compress.New(m); err != nil {
				return err
			}
			methods = append(methods, m)
		}
		if len(methods) == 0 {
			return badRequest("parameter methods: empty list")
		}
	}
	bounds := compress.ErrorBounds
	if raw := r.URL.Query().Get("bounds"); raw != "" {
		bounds = nil
		for _, tok := range strings.Split(raw, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			v, err := strconv.ParseFloat(tok, 64)
			if err != nil || v < 0 {
				return badRequest("parameter bounds: %q is not a non-negative number", tok)
			}
			bounds = append(bounds, v)
		}
		if len(bounds) == 0 {
			return badRequest("parameter bounds: empty list")
		}
	}

	rh := newRequestHash("recommend")
	rh.param("maxte", maxTE)
	rh.param("methods", methods)
	rh.param("bounds", bounds)
	rh.param("start", sp.start)
	rh.param("interval", sp.interval)
	values, err := readValues(ctx, r.Body, rh, s.opts.ChunkSize)
	if err != nil {
		return err
	}
	out, err := s.cached(ctx, w, rh.key(), func() ([]byte, error) {
		return computeRecommend(ctx, maxTE, methods, bounds, sp, values)
	})
	if err != nil {
		return err
	}
	w.Header().Set("Content-Type", "application/json")
	_, err = w.Write(out)
	return err
}

// computeRecommend sweeps the (method, bound) grid over one series —
// exactly the compression half of a grid cell, per candidate.
func computeRecommend(ctx context.Context, maxTE float64, methods []compress.Method, bounds []float64, sp seriesParams, values []float64) ([]byte, error) {
	series := timeseries.New("request", sp.start, sp.interval, values)
	rawGz, err := compress.RawGzipSize(series)
	if err != nil {
		return nil, err
	}
	resp := recommendResponse{Source: "series", MaxTE: maxTE, Epsilon: math.NaN()}
	bestCR := -1.0
	// One pooled reconstruction buffer serves every candidate in the sweep.
	vals := compress.GetFloats(series.Len())
	defer func() { compress.PutFloats(vals) }()
	for _, m := range methods {
		comp, err := compress.New(m)
		if err != nil {
			return nil, err
		}
		for _, eps := range bounds {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			c, err := comp.Compress(series, eps)
			if err != nil {
				return nil, badRequest("%s at eps=%v: %v", m, eps, err)
			}
			vals, err = c.AppendValues(vals[:0])
			if err != nil {
				return nil, err
			}
			te, err := stats.Evaluate(series.Values, vals)
			if err != nil {
				return nil, err
			}
			cand := recommendCandidate{
				Method:  m,
				Epsilon: eps,
				CR:      float64(rawGz) / float64(c.Size()),
				TENRMSE: te.NRMSE,
				OK:      te.NRMSE <= maxTE,
			}
			resp.Candidates = append(resp.Candidates, cand)
			if cand.OK && cand.CR > bestCR {
				bestCR = cand.CR
				resp.Found = true
				resp.Method = cand.Method
				resp.Epsilon = cand.Epsilon
				resp.CR = cand.CR
				resp.TE = cand.TENRMSE
			}
		}
	}
	if !resp.Found {
		resp.Epsilon = 0
	}
	return json.Marshal(resp)
}

// recommendFromGrid answers a dataset-level recommendation from the
// precomputed grid the server loaded (read-only) at startup.
func (s *Server) recommendFromGrid(w http.ResponseWriter, r *http.Request, dataset string) error {
	if s.grid == nil {
		return badRequest("no grid store configured: start the server with a grid store to serve dataset-level recommendations")
	}
	maxTFE, err := floatParam(r, "maxtfe", 0.1)
	if err != nil {
		return err
	}
	var models []string
	if raw := r.URL.Query().Get("models"); raw != "" {
		for _, name := range strings.Split(raw, ",") {
			if name = strings.TrimSpace(name); name != "" {
				models = append(models, name)
			}
		}
	}
	rec, err := core.Recommend(s.grid, dataset, maxTFE, models)
	if err != nil {
		return badRequest("%v", err)
	}
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(recommendResponse{
		Source:  "grid",
		Found:   true,
		Dataset: dataset,
		MaxTFE:  maxTFE,
		Method:  rec.Method,
		Epsilon: rec.Epsilon,
		CR:      rec.CR,
		TE:      rec.TE,
		TFE:     rec.TFE,
	})
}

// handleStats implements GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}
