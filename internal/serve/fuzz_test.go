package serve

import (
	"bufio"
	"context"
	"io"
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"lossyts/internal/compress"
	"lossyts/internal/timeseries"
)

// sameFloat is bit-exact equality with NaN ≡ NaN: the text round-trip
// canonicalises NaN payload bits, which is not a reconstruction difference.
func sameFloat(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b) || (math.IsNaN(a) && math.IsNaN(b))
}

// FuzzServeCompressRoundTrip differentially fuzzes the HTTP compress →
// decompress path against the library: a body the value parser accepts must
// get a 200 whose payload decompresses over HTTP to exactly the batch
// codec's reconstruction (the endpoints are a transport, not a second
// codec); a body it rejects must get a 400; and no body may panic a handler
// or desynchronise point counts.
func FuzzServeCompressRoundTrip(f *testing.F) {
	s, err := New(Options{}) // no durable cache: every iteration computes
	if err != nil {
		f.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()

	f.Add("1.5 2.5 3.5 4.5", uint8(0), uint8(1))
	f.Add("1,2,3,4,5,6,7,8,9,10\n11,12", uint8(1), uint8(0))
	f.Add(testSeries(100), uint8(2), uint8(2))
	f.Add("0 0 0 0 0 0", uint8(0), uint8(0))
	f.Add("banana", uint8(1), uint8(1))
	f.Add("NaN 1 2", uint8(2), uint8(0))
	f.Add("1e308 -1e308 5", uint8(2), uint8(0))

	bounds := []string{"0", "0.1", "1.5"}
	f.Fuzz(func(t *testing.T, body string, mi, ei uint8) {
		if len(body) > 4096 {
			t.Skip("oversized body")
		}
		method := compress.Methods[int(mi)%len(compress.Methods)]
		eps := bounds[int(ei)%len(bounds)]
		epsF, _ := strconv.ParseFloat(eps, 64)

		// The reference: what should this body mean?
		values, parseErr := readValues(context.Background(), strings.NewReader(body), io.Discard, 64)

		req := httptest.NewRequest("POST", "/v1/compress?method="+string(method)+"&eps="+eps, strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)

		if parseErr != nil {
			if rec.Code != 400 {
				t.Fatalf("status %d on a malformed body, want 400 (%s)", rec.Code, rec.Body)
			}
			return
		}
		comp, err := compress.New(method)
		if err != nil {
			t.Fatal(err)
		}
		c, batchErr := comp.Compress(timeseries.New("fuzz", 0, 60, values), epsF)
		if batchErr != nil {
			if rec.Code == 200 {
				t.Fatalf("endpoint compressed a series the batch codec rejects (%v)", batchErr)
			}
			return
		}
		if rec.Code != 200 {
			t.Fatalf("status %d on a compressible body: %s", rec.Code, rec.Body)
		}
		n, err := strconv.Atoi(rec.Header().Get("X-Lossyts-Points"))
		if err != nil || n != len(values) {
			t.Fatalf("X-Lossyts-Points = %q, want %d", rec.Header().Get("X-Lossyts-Points"), len(values))
		}
		payload := rec.Body.String()

		dreq := httptest.NewRequest("POST", "/v1/decompress?method="+string(method), strings.NewReader(payload))
		drec := httptest.NewRecorder()
		h.ServeHTTP(drec, dreq)
		if drec.Code != 200 {
			t.Fatalf("decompress: status %d on a payload we just produced: %s", drec.Code, drec.Body)
		}
		var got []float64
		sc := bufio.NewScanner(drec.Body)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "#") {
				t.Fatalf("mid-stream decode error on a payload we just produced: %s", line)
			}
			v, err := strconv.ParseFloat(line, 64)
			if err != nil {
				t.Fatalf("unparseable output line %q: %v", line, err)
			}
			got = append(got, v)
		}
		if len(got) != n {
			t.Fatalf("decompressed %d values over HTTP, header promised %d", len(got), n)
		}

		want, err := c.Decompress()
		if err != nil {
			t.Fatal(err)
		}
		if len(want.Values) != len(got) {
			t.Fatalf("HTTP reconstruction has %d values, batch %d", len(got), len(want.Values))
		}
		for i := range got {
			if !sameFloat(got[i], want.Values[i]) {
				t.Fatalf("value %d: HTTP %x != batch %x", i, math.Float64bits(got[i]), math.Float64bits(want.Values[i]))
			}
		}
	})
}
