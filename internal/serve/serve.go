// Package serve is the serving plane: a stdlib net/http daemon that exposes
// the repo's compression and forecasting facade as five endpoints —
// /v1/compress, /v1/decompress, /v1/forecast, /v1/recommend, /v1/monitor —
// so the paper's grid cells can be answered interactively ("compress this
// series at this bound and tell me the forecast impact") instead of by
// re-running grids.
//
// Three properties carry the load:
//
//   - Request bodies are size-capped (per-request memory bound) and flow
//     through the chunked streaming data plane: values are tokenised into
//     chunks and pushed through the incremental codec kernels, and
//     decompression streams chunk by chunk back to the client.
//   - Every request runs under its request-scoped context; a client
//     disconnect cancels the computation at chunk, cell, and training-epoch
//     boundaries.
//   - Expensive results dedupe through a shared cell store behind a
//     singleflight layer: N concurrent identical requests trigger exactly
//     one computation, and later identical requests are served from the
//     store without computing at all.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"

	"lossyts/internal/compress"
	"lossyts/internal/core"
	"lossyts/internal/core/cellstore"
	"lossyts/internal/forecast"
	"lossyts/internal/timeseries"
)

// DefaultMaxBodyBytes is the per-request body cap when Options.MaxBodyBytes
// is zero: large enough for paper-scale series uploads, small enough that a
// burst of maximal requests stays within a small machine's memory.
const DefaultMaxBodyBytes = 32 << 20

// StatusClientClosedRequest is the status recorded when a request's context
// is cancelled mid-computation (the nginx 499 convention). The client is
// gone, so the response is written only for logs and tests.
const StatusClientClosedRequest = 499

// Options configures a Server.
type Options struct {
	// MaxBodyBytes caps each request body; requests beyond it get 413.
	// 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// ChunkSize is the chunk length (points) of the streaming data plane
	// passes; 0 means timeseries.DefaultChunkSize.
	ChunkSize int
	// CachePath names the cell-store journal the server caches results in
	// ("" = no durable cache; concurrent identical requests still dedupe
	// through the singleflight layer). The server is the store's single
	// writer; other processes may read it concurrently with
	// cellstore.OpenReadOnly.
	CachePath string
	// GridStore optionally names a completed evaluation-grid store (written
	// by SaveGrid or a finished Options.Store run). When set, /v1/recommend
	// answers dataset-level queries (?dataset=...&maxtfe=...) from the
	// precomputed grid via core.Recommend. The grid is loaded read-only at
	// startup, so a grid runner appending to the file is never disturbed.
	GridStore string
	// Forecast is the default forecasting configuration of /v1/forecast;
	// zero values fall back to forecast.DefaultConfig with the serving
	// plane's reduced training budget (8 epochs, 256 train windows).
	// Individual requests may override input/horizon/epochs/seed by query
	// parameter.
	Forecast forecast.Config
}

// DefaultForecastConfig is the serving plane's training budget: the paper's
// hyperparameters with the same reduced epoch and window caps the default
// evaluation grid uses, so one interactive request answers in interactive
// time.
func DefaultForecastConfig() forecast.Config {
	cfg := forecast.DefaultConfig()
	cfg.Epochs = 8
	cfg.MaxTrainWindows = 256
	return cfg
}

// Stats is a snapshot of the server's request counters.
type Stats struct {
	// Requests counts every request routed to a /v1/ endpoint.
	Requests int64 `json:"requests"`
	// Hits counts requests served from the durable cell-store cache.
	Hits int64 `json:"hits"`
	// Dedups counts requests that joined another request's in-flight
	// computation (singleflight followers).
	Dedups int64 `json:"dedups"`
	// Computations counts computations actually executed (singleflight
	// leaders plus uncacheable work).
	Computations int64 `json:"computations"`
	// Cancelled counts requests abandoned because the client disconnected.
	Cancelled int64 `json:"cancelled"`
	// Errors counts requests that failed with a non-cancellation error.
	Errors int64 `json:"errors"`
}

// Server implements the serving plane. Construct with New, mount Handler on
// an http.Server, and Close when done (closes the cache store).
type Server struct {
	opts  Options
	mux   *http.ServeMux
	cache *cellstore.Store // nil when CachePath is ""
	grid  *core.GridResult // nil when GridStore is ""
	// exec is the work-plane executor cache misses flow through — the same
	// unit-of-work type the batch grid runner checkpoints cells with, so
	// "compute exactly this record once and persist it" has one
	// implementation, not a serving copy and a batch copy.
	exec *core.WorkExec

	requests, hits, dedups, computations, cancelled, errs atomic.Int64

	// onCompute, when non-nil, is called at the start of every computation
	// (singleflight leaders only) with the cache key. Test hook: the
	// concurrency tests use it to hold the leader's computation open until
	// every concurrent request has arrived.
	onCompute func(key string)
}

// New builds a Server, opening the cache store (single writer) and loading
// the optional grid store (read-only) up front so misconfiguration fails at
// startup, not on the first request.
func New(opts Options) (*Server, error) {
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if opts.ChunkSize <= 0 {
		opts.ChunkSize = timeseries.DefaultChunkSize
	}
	if opts.Forecast.InputLen == 0 {
		opts.Forecast = DefaultForecastConfig()
	}
	s := &Server{opts: opts, mux: http.NewServeMux()}
	if opts.CachePath != "" {
		store, err := cellstore.Open(opts.CachePath)
		if err != nil {
			return nil, fmt.Errorf("serve: opening cache store: %w", err)
		}
		s.cache = store
	}
	s.exec = core.NewWorkExec(s.cache)
	// The executor calls OnCompute exactly when a computation actually runs
	// (flight leaders that missed the store), which is precisely when the
	// computations counter must move — the invariant the stress tests
	// assert (Hits+Dedups+Computations == Requests) hangs off this hook.
	s.exec.OnCompute = func(key string) {
		if s.onCompute != nil {
			s.onCompute(key)
		}
		s.computations.Add(1)
	}
	if opts.GridStore != "" {
		g, err := core.LoadGrid(opts.GridStore)
		if err != nil {
			if s.cache != nil {
				s.cache.Close()
			}
			return nil, fmt.Errorf("serve: loading grid store: %w", err)
		}
		s.grid = g
	}
	s.mux.HandleFunc("POST /v1/compress", s.endpoint(s.handleCompress))
	s.mux.HandleFunc("POST /v1/decompress", s.endpoint(s.handleDecompress))
	s.mux.HandleFunc("POST /v1/forecast", s.endpoint(s.handleForecast))
	s.mux.HandleFunc("POST /v1/recommend", s.endpoint(s.handleRecommend))
	s.mux.HandleFunc("GET /v1/monitor", s.endpoint(s.handleMonitor))
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close closes the cache store. In-flight requests that race Close may fail;
// callers shut the http.Server down first.
func (s *Server) Close() error {
	if s.cache != nil {
		return s.cache.Close()
	}
	return nil
}

// Stats returns a snapshot of the request counters.
func (s *Server) Stats() Stats {
	return Stats{
		Requests:     s.requests.Load(),
		Hits:         s.hits.Load(),
		Dedups:       s.dedups.Load(),
		Computations: s.computations.Load(),
		Cancelled:    s.cancelled.Load(),
		Errors:       s.errs.Load(),
	}
}

// CacheLen reports how many records the durable cache holds (0 without one).
func (s *Server) CacheLen() int {
	if s.cache == nil {
		return 0
	}
	return s.cache.Len()
}

// httpError is an error with a definite HTTP status, used for request
// validation failures.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

// badRequest builds a 400 error.
func badRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// endpoint wraps a handler with the shared request plumbing: the body cap,
// the request counter, and the error-to-status mapping.
func (s *Server) endpoint(h func(w http.ResponseWriter, r *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
		if err := h(w, r); err != nil {
			status := s.statusOf(r, err)
			switch status {
			case StatusClientClosedRequest:
				s.cancelled.Add(1)
			default:
				s.errs.Add(1)
			}
			http.Error(w, err.Error(), status)
		}
	}
}

// statusOf maps a handler error to its HTTP status. The registries' typed
// unknown-name errors are client errors (the name came from the request);
// the body cap surfaces as 413; a cancelled request context dominates every
// other error, because computations abandoned mid-flight fail in arbitrary
// ways once their context is dead.
func (s *Server) statusOf(r *http.Request, err error) int {
	if r.Context().Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return StatusClientClosedRequest
	}
	var maxBytes *http.MaxBytesError
	if errors.As(err, &maxBytes) {
		return http.StatusRequestEntityTooLarge
	}
	var unknownMethod *compress.UnknownMethodError
	var unknownModel *forecast.UnknownModelError
	if errors.As(err, &unknownMethod) || errors.As(err, &unknownModel) {
		return http.StatusBadRequest
	}
	var he *httpError
	if errors.As(err, &he) {
		return he.status
	}
	return http.StatusInternalServerError
}
