package serve

import "sync"

// flightGroup deduplicates concurrent computations by key: while one call
// for a key is in flight, later calls for the same key block and share its
// result instead of computing again. It is the standard singleflight shape
// (stdlib-only — the module vendors nothing), reduced to what the serving
// cache needs: N concurrent identical requests against a cold cache trigger
// exactly one computation.
//
// Unlike a cache, a flight entry lives only as long as the computation: once
// the leader returns, the key is forgotten and the durable result store
// takes over as the dedupe layer for later arrivals.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

// flightCall is one in-flight computation and its eventual result.
type flightCall struct {
	done    chan struct{}
	waiters int // callers parked on done, guarded by flightGroup.mu
	val     []byte
	err     error
}

// waiting reports how many callers are currently parked on in-flight calls —
// concurrency tests use it to release a held leader only once every follower
// has genuinely joined the flight.
func (g *flightGroup) waiting() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, c := range g.m {
		n += c.waiters
	}
	return n
}

// Do runs fn for key, unless a call for key is already in flight, in which
// case it waits for that call and returns its result. shared reports whether
// the returned value came from another caller's computation.
//
// The returned byte slice is shared across callers and must be treated as
// read-only.
func (g *flightGroup) Do(key string, fn func() ([]byte, error)) (val []byte, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = map[string]*flightCall{}
	}
	if c, ok := g.m[key]; ok {
		c.waiters++
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}
