package serve

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"

	"lossyts/internal/core"
	"lossyts/internal/timeseries"
)

// isValueSep reports whether b separates value tokens in a request body.
// Newlines, commas, and blanks all work, so `seq`, CSV columns, and JSON-ish
// number lists can be piped in without reformatting.
func isValueSep(b byte) bool {
	switch b {
	case ' ', '\t', '\r', '\n', ',', ';':
		return true
	}
	return false
}

// scanTokens is the bufio.SplitFunc for value bodies.
func scanTokens(data []byte, atEOF bool) (advance int, token []byte, err error) {
	start := 0
	for start < len(data) && isValueSep(data[start]) {
		start++
	}
	for i := start; i < len(data); i++ {
		if isValueSep(data[i]) {
			return i + 1, data[start:i], nil
		}
	}
	if atEOF && len(data) > start {
		return len(data), data[start:], nil
	}
	return start, nil, nil
}

// readValues tokenises a request body into a value series, streaming tokens
// chunk by chunk: ctx is checked at every chunk boundary, so a disconnected
// client stops the parse within one chunk. The body bytes also feed h (the
// content hash the cache keys on). The returned slice's length is bounded by
// the request body cap upstream.
func readValues(ctx context.Context, r io.Reader, h io.Writer, chunkSize int) ([]float64, error) {
	sc := bufio.NewScanner(io.TeeReader(r, h))
	sc.Split(scanTokens)
	values := make([]float64, 0, chunkSize)
	sinceCheck := 0
	for sc.Scan() {
		tok := sc.Text()
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nil, badRequest("value %d: %q is not a number", len(values)+1, tok)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, badRequest("value %d: %q is not finite", len(values)+1, tok)
		}
		values = append(values, v)
		if sinceCheck++; sinceCheck >= chunkSize {
			sinceCheck = 0
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err // a *http.MaxBytesError lands here → 413
	}
	if len(values) == 0 {
		return nil, badRequest("empty body: send whitespace-, newline-, or comma-separated values")
	}
	return values, nil
}

// readRaw reads a binary body (compressed payloads) fully, feeding h.
func readRaw(r io.Reader, h io.Writer) ([]byte, error) {
	body, err := io.ReadAll(io.TeeReader(r, h))
	if err != nil {
		return nil, err
	}
	if len(body) == 0 {
		return nil, badRequest("empty body: send a compressed payload")
	}
	return body, nil
}

// chunksOf drives values through fn in chunkSize pieces with the correct
// per-chunk timestamps — the bridge from a parsed request body onto the
// chunked data plane (StreamEncoder.PushChunk and friends).
func chunksOf(ctx context.Context, values []float64, start, interval int64, chunkSize int, fn func(c timeseries.Chunk) error) error {
	for lo := 0; lo < len(values); lo += chunkSize {
		if err := ctx.Err(); err != nil {
			return err
		}
		hi := lo + chunkSize
		if hi > len(values) {
			hi = len(values)
		}
		c := timeseries.Chunk{
			Start:    start + int64(lo)*interval,
			Interval: interval,
			Values:   values[lo:hi],
		}
		if err := fn(c); err != nil {
			return err
		}
	}
	return nil
}

// requestHash accumulates the cache key of a request: every parameter that
// changes the response, then the body bytes (via readValues/readRaw's tee).
type requestHash struct {
	h interface {
		io.Writer
		Sum([]byte) []byte
	}
}

func newRequestHash(endpoint string) *requestHash {
	rh := &requestHash{h: sha256.New()}
	fmt.Fprintf(rh.h, "%s\x00", endpoint)
	return rh
}

// param mixes one named parameter into the key.
func (rh *requestHash) param(name string, v any) {
	fmt.Fprintf(rh.h, "%s=%v\x00", name, v)
}

// Write feeds body bytes (io.TeeReader target).
func (rh *requestHash) Write(p []byte) (int, error) { return rh.h.Write(p) }

// key renders the final cache key under the serve namespace. The "serve"
// prefix keeps these records disjoint from grid cell/dataset records, so a
// cache store and a grid store could even share a file without collisions.
func (rh *requestHash) key() string {
	return "serve|" + hex.EncodeToString(rh.h.Sum(nil))
}

// floatParam parses an optional float query parameter.
func floatParam(r *http.Request, name string, def float64) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, badRequest("parameter %s: %q is not a number", name, raw)
	}
	return v, nil
}

// intParam parses an optional integer query parameter.
func intParam(r *http.Request, name string, def int64) (int64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, badRequest("parameter %s: %q is not an integer", name, raw)
	}
	return v, nil
}

// cached runs one cacheable computation as a work-plane unit through the
// server's executor: store lookup first, then the singleflight layer, then
// compute (core.WorkExec.Do — the exact semantics the batch grid path
// shares, including the follower-retries-cancelled-leader rule). The
// X-Lossyts-Cache response header records which layer answered — "hit"
// (durable store), "dedup" (joined another request's in-flight
// computation), or "miss" (computed here).
func (s *Server) cached(ctx context.Context, w http.ResponseWriter, key string, compute func() ([]byte, error)) ([]byte, error) {
	u := core.WorkUnit{
		Key:     key,
		Compute: func(context.Context) ([]byte, error) { return compute() },
	}
	out, src, err := s.exec.Do(ctx, u)
	if err != nil {
		return nil, err
	}
	switch src {
	case core.WorkShared:
		s.dedups.Add(1)
	case core.WorkHit:
		s.hits.Add(1)
	}
	w.Header().Set("X-Lossyts-Cache", src.String())
	return out, nil
}
