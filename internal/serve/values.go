package serve

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"

	"lossyts/internal/timeseries"
)

// isValueSep reports whether b separates value tokens in a request body.
// Newlines, commas, and blanks all work, so `seq`, CSV columns, and JSON-ish
// number lists can be piped in without reformatting.
func isValueSep(b byte) bool {
	switch b {
	case ' ', '\t', '\r', '\n', ',', ';':
		return true
	}
	return false
}

// scanTokens is the bufio.SplitFunc for value bodies.
func scanTokens(data []byte, atEOF bool) (advance int, token []byte, err error) {
	start := 0
	for start < len(data) && isValueSep(data[start]) {
		start++
	}
	for i := start; i < len(data); i++ {
		if isValueSep(data[i]) {
			return i + 1, data[start:i], nil
		}
	}
	if atEOF && len(data) > start {
		return len(data), data[start:], nil
	}
	return start, nil, nil
}

// readValues tokenises a request body into a value series, streaming tokens
// chunk by chunk: ctx is checked at every chunk boundary, so a disconnected
// client stops the parse within one chunk. The body bytes also feed h (the
// content hash the cache keys on). The returned slice's length is bounded by
// the request body cap upstream.
func readValues(ctx context.Context, r io.Reader, h io.Writer, chunkSize int) ([]float64, error) {
	sc := bufio.NewScanner(io.TeeReader(r, h))
	sc.Split(scanTokens)
	values := make([]float64, 0, chunkSize)
	sinceCheck := 0
	for sc.Scan() {
		tok := sc.Text()
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nil, badRequest("value %d: %q is not a number", len(values)+1, tok)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, badRequest("value %d: %q is not finite", len(values)+1, tok)
		}
		values = append(values, v)
		if sinceCheck++; sinceCheck >= chunkSize {
			sinceCheck = 0
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err // a *http.MaxBytesError lands here → 413
	}
	if len(values) == 0 {
		return nil, badRequest("empty body: send whitespace-, newline-, or comma-separated values")
	}
	return values, nil
}

// readRaw reads a binary body (compressed payloads) fully, feeding h.
func readRaw(r io.Reader, h io.Writer) ([]byte, error) {
	body, err := io.ReadAll(io.TeeReader(r, h))
	if err != nil {
		return nil, err
	}
	if len(body) == 0 {
		return nil, badRequest("empty body: send a compressed payload")
	}
	return body, nil
}

// chunksOf drives values through fn in chunkSize pieces with the correct
// per-chunk timestamps — the bridge from a parsed request body onto the
// chunked data plane (StreamEncoder.PushChunk and friends).
func chunksOf(ctx context.Context, values []float64, start, interval int64, chunkSize int, fn func(c timeseries.Chunk) error) error {
	for lo := 0; lo < len(values); lo += chunkSize {
		if err := ctx.Err(); err != nil {
			return err
		}
		hi := lo + chunkSize
		if hi > len(values) {
			hi = len(values)
		}
		c := timeseries.Chunk{
			Start:    start + int64(lo)*interval,
			Interval: interval,
			Values:   values[lo:hi],
		}
		if err := fn(c); err != nil {
			return err
		}
	}
	return nil
}

// requestHash accumulates the cache key of a request: every parameter that
// changes the response, then the body bytes (via readValues/readRaw's tee).
type requestHash struct {
	h interface {
		io.Writer
		Sum([]byte) []byte
	}
}

func newRequestHash(endpoint string) *requestHash {
	rh := &requestHash{h: sha256.New()}
	fmt.Fprintf(rh.h, "%s\x00", endpoint)
	return rh
}

// param mixes one named parameter into the key.
func (rh *requestHash) param(name string, v any) {
	fmt.Fprintf(rh.h, "%s=%v\x00", name, v)
}

// Write feeds body bytes (io.TeeReader target).
func (rh *requestHash) Write(p []byte) (int, error) { return rh.h.Write(p) }

// key renders the final cache key under the serve namespace. The "serve"
// prefix keeps these records disjoint from grid cell/dataset records, so a
// cache store and a grid store could even share a file without collisions.
func (rh *requestHash) key() string {
	return "serve|" + hex.EncodeToString(rh.h.Sum(nil))
}

// floatParam parses an optional float query parameter.
func floatParam(r *http.Request, name string, def float64) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, badRequest("parameter %s: %q is not a number", name, raw)
	}
	return v, nil
}

// intParam parses an optional integer query parameter.
func intParam(r *http.Request, name string, def int64) (int64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, badRequest("parameter %s: %q is not an integer", name, raw)
	}
	return v, nil
}

// cached runs one cacheable computation: store lookup first, then the
// singleflight layer, then compute. The X-Lossyts-Cache response header
// records which layer answered — "hit" (durable store), "dedup" (joined
// another request's in-flight computation), or "miss" (computed here).
//
// A singleflight follower whose leader was cancelled retries the
// computation itself: the leader's client hung up, but this request's
// client is still waiting, and a context error from someone else's request
// must never leak into this one.
func (s *Server) cached(ctx context.Context, w http.ResponseWriter, key string, compute func() ([]byte, error)) ([]byte, error) {
	if s.cache != nil {
		if payload, ok := s.cache.Get(key); ok {
			s.hits.Add(1)
			w.Header().Set("X-Lossyts-Cache", "hit")
			return payload, nil
		}
	}
	var fromCache bool
	run := func() ([]byte, error) {
		if s.cache != nil {
			// Re-check under the flight: a request that missed the lookup
			// above but won flight leadership only after the previous leader
			// stored its result must not recompute (the classic stampede
			// residual). This check makes "N identical requests, exactly one
			// computation" structural rather than probabilistic.
			if payload, ok := s.cache.Get(key); ok {
				fromCache = true
				return payload, nil
			}
		}
		if s.onCompute != nil {
			s.onCompute(key)
		}
		s.computations.Add(1)
		out, err := compute()
		if err != nil {
			return nil, err
		}
		if s.cache != nil {
			if err := s.cache.Put(key, out); err != nil {
				return nil, fmt.Errorf("serve: caching result: %w", err)
			}
		}
		return out, nil
	}
	for attempt := 0; ; attempt++ {
		out, err, shared := s.group.Do(key, run)
		if shared && err != nil && attempt == 0 && isCancellation(err) && ctx.Err() == nil {
			continue // the leader's client hung up; ours is still waiting
		}
		if err != nil {
			return nil, err
		}
		switch {
		case shared:
			s.dedups.Add(1)
			w.Header().Set("X-Lossyts-Cache", "dedup")
		case fromCache:
			s.hits.Add(1)
			w.Header().Set("X-Lossyts-Cache", "hit")
		default:
			w.Header().Set("X-Lossyts-Cache", "miss")
		}
		return out, nil
	}
}

// isCancellation reports whether err stems from a cancelled context.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
