package serve

import (
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"
)

// waitGoroutinesBack polls until the goroutine count drains back to (near)
// the baseline, failing the test if request workers leak past the deadline.
func waitGoroutinesBack(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+2 { // tolerate unrelated runtime goroutines
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d, baseline %d", n, baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSingleflightDedupe64 is the core dedupe contract under the race
// detector: 64 concurrent identical requests against a cold store must
// trigger exactly one computation and write exactly one store record — every
// other request is answered by the singleflight layer or the durable cache.
//
// The onCompute hook holds the leader's computation open until all 64
// requests have entered the handler (observable through the request
// counter), so the concurrency is real, not accidental.
func TestSingleflightDedupe64(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	release := make(chan struct{})
	s.onCompute = func(string) { <-release }

	const workers = 64
	body := testSeries(800)
	type result struct {
		status int
		body   string
		layer  string
	}
	results := make(chan result, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, out := post(t, ts, "/v1/compress?method=PMC&eps=0.5", body)
			results <- result{resp.StatusCode, string(out), resp.Header.Get("X-Lossyts-Cache")}
		}()
	}
	// Release the leader only once every request is in the handler.
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Requests < workers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests arrived", s.Stats().Requests, workers)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(results)

	var first string
	layers := map[string]int{}
	for r := range results {
		if r.status != http.StatusOK {
			t.Fatalf("status %d: %s", r.status, r.body)
		}
		if first == "" {
			first = r.body
		} else if r.body != first {
			t.Fatal("concurrent identical requests returned different payloads")
		}
		layers[r.layer]++
	}
	st := s.Stats()
	if st.Computations != 1 {
		t.Fatalf("Computations = %d, want exactly 1 (layers: %v)", st.Computations, layers)
	}
	if got := s.CacheLen(); got != 1 {
		t.Fatalf("store records = %d, want exactly 1", got)
	}
	if st.Hits+st.Dedups != workers-1 {
		t.Fatalf("hits(%d) + dedups(%d) != %d (stats %+v, layers %v)",
			st.Hits, st.Dedups, workers-1, st, layers)
	}
	if layers["miss"] != 1 {
		t.Fatalf("want exactly one miss response, got layers %v", layers)
	}
}

// TestMixedKeyStress hammers the server with 128 requests across 8 distinct
// keys (different error bounds) with no artificial serialization: per key
// there must be exactly one computation and one store record, every response
// for a key must be byte-identical, and afterwards no goroutine may linger.
func TestMixedKeyStress(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s, ts := newTestServer(t, Options{})

	const keys = 8
	const perKey = 16
	body := testSeries(600)
	bodies := make([][]string, keys) // responses per key
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan string, keys*perKey)
	for k := 0; k < keys; k++ {
		for i := 0; i < perKey; i++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				eps := fmt.Sprintf("0.%d1", k+1)
				resp, out := post(t, ts, "/v1/compress?method=SWING&eps="+eps, body)
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("eps %s: status %d: %s", eps, resp.StatusCode, out)
					return
				}
				mu.Lock()
				bodies[k] = append(bodies[k], string(out))
				mu.Unlock()
			}(k)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	for k := 0; k < keys; k++ {
		if len(bodies[k]) != perKey {
			t.Fatalf("key %d: %d responses, want %d", k, len(bodies[k]), perKey)
		}
		for _, b := range bodies[k] {
			if b != bodies[k][0] {
				t.Fatalf("key %d: divergent responses", k)
			}
		}
	}
	st := s.Stats()
	if st.Computations != keys {
		t.Fatalf("Computations = %d, want %d (one per key; stats %+v)", st.Computations, keys, st)
	}
	if got := s.CacheLen(); got != keys {
		t.Fatalf("store records = %d, want %d", got, keys)
	}
	if st.Hits+st.Dedups != keys*(perKey-1) {
		t.Fatalf("hits(%d) + dedups(%d) != %d (stats %+v)", st.Hits, st.Dedups, keys*(perKey-1), st)
	}

	ts.Client().CloseIdleConnections()
	waitGoroutinesBack(t, baseline)
}

// TestDedupeWithoutStore proves the singleflight layer stands alone: with no
// durable cache configured, concurrent identical requests still share one
// computation (later sequential requests recompute — nothing remembers them).
func TestDedupeWithoutStore(t *testing.T) {
	s, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := mountTestServer(t, s)
	release := make(chan struct{})
	s.onCompute = func(string) { <-release }

	const workers = 16
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, out := post(t, ts, "/v1/compress?method=PMC&eps=0.5", testSeries(300))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d: %s", resp.StatusCode, out)
			}
		}()
	}
	// Without a durable store there is no second dedupe layer, so wait until
	// every follower is parked on the in-flight call before releasing the
	// leader — the flight-group waiter count makes that observable.
	deadline := time.Now().Add(10 * time.Second)
	for s.exec.Waiting() < workers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d followers parked (stats %+v)", s.exec.Waiting(), s.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(release)
	wg.Wait()

	st := s.Stats()
	if st.Computations != 1 {
		t.Fatalf("Computations = %d, want 1 from pure singleflight", st.Computations)
	}
	if st.Dedups != workers-1 {
		t.Fatalf("Dedups = %d, want %d", st.Dedups, workers-1)
	}
	if s.CacheLen() != 0 {
		t.Fatal("no store configured but CacheLen > 0")
	}
}
