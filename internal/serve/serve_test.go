package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// testSeries renders n points of a noisy daily-ish sine as a value body —
// enough structure that every compressor produces segments and every model
// has something to learn.
func testSeries(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		v := 10 + 5*math.Sin(2*math.Pi*float64(i)/48) + 0.3*math.Sin(float64(i)*0.91)
		fmt.Fprintf(&b, "%.6f\n", v)
	}
	return b.String()
}

// newTestServer builds a Server with a fresh cache store in a temp dir and
// mounts it on an httptest.Server.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.CachePath == "" {
		opts.CachePath = filepath.Join(t.TempDir(), "cache.cells")
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, mountTestServer(t, s)
}

// mountTestServer mounts an already-built Server on an httptest.Server and
// ties both lifetimes to the test.
func mountTestServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Close(); err != nil {
			t.Errorf("closing server: %v", err)
		}
	})
	return ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestEndpointsTable drives every endpoint through its request-validation
// surface: happy paths, malformed bodies, unknown registry names (typed
// 400s), and method mismatches.
func TestEndpointsTable(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body := testSeries(512)

	cases := []struct {
		name       string
		path       string
		body       string
		wantStatus int
		wantInBody string // substring of the response body, "" = don't check
	}{
		{"compress happy", "/v1/compress?method=PMC&eps=0.5", body, 200, ""},
		{"compress default eps", "/v1/compress?method=SWING", body, 200, ""},
		{"compress missing method", "/v1/compress", body, 400, "method is required"},
		{"compress unknown method", "/v1/compress?method=ZFP", body, 400, "unknown"},
		{"compress negative eps", "/v1/compress?method=PMC&eps=-1", body, 400, "negative"},
		{"compress bad eps", "/v1/compress?method=PMC&eps=abc", body, 400, "not a number"},
		{"compress malformed body", "/v1/compress?method=PMC", "1.5 2.5 banana 4.5", 400, "not a number"},
		{"compress empty body", "/v1/compress?method=PMC", "", 400, "empty body"},
		{"compress bad interval", "/v1/compress?method=PMC&interval=0", body, 400, "interval"},
		{"compress bad start", "/v1/compress?method=PMC&start=-5", body, 400, "start"},
		{"decompress unknown method", "/v1/decompress?method=NOPE", "xxxx", 400, "unknown"},
		{"decompress garbage payload", "/v1/decompress?method=PMC", "not gzip at all", 400, "invalid payload"},
		{"decompress empty body", "/v1/decompress?method=PMC", "", 400, "empty body"},
		{"forecast missing model", "/v1/forecast", body, 400, "model is required"},
		{"forecast unknown model", "/v1/forecast?model=Prophet", body, 400, "unknown"},
		{"forecast unknown method", "/v1/forecast?model=DLinear&method=ZIP", body, 400, "unknown"},
		{"forecast too short", "/v1/forecast?model=DLinear&input=24&horizon=8&epochs=1", testSeries(60), 400, "too short"},
		{"recommend happy", "/v1/recommend?maxte=0.5&methods=PMC&bounds=0.1,1", body, 200, `"found":true`},
		{"recommend unknown method", "/v1/recommend?methods=PMC,BOGUS", body, 400, "unknown"},
		{"recommend bad bound", "/v1/recommend?bounds=0.1,-2", body, 400, "bounds"},
		{"recommend grid mode unconfigured", "/v1/recommend?dataset=ETTm1", "", 400, "no grid store"},
		{"unknown route", "/v1/nope", body, 404, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, out := post(t, ts, tc.path, tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body: %s)", resp.StatusCode, tc.wantStatus, out)
			}
			if tc.wantInBody != "" && !strings.Contains(string(out), tc.wantInBody) {
				t.Fatalf("body %q does not contain %q", out, tc.wantInBody)
			}
		})
	}

	t.Run("method not allowed", func(t *testing.T) {
		resp, err := ts.Client().Get(ts.URL + "/v1/compress?method=PMC")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET on POST route: status = %d, want 405", resp.StatusCode)
		}
	})
}

// TestCompressDecompressRoundTrip proves the HTTP path is the real codec:
// the compress response body decompresses (via the library) to the posted
// values within the bound, and piping it back through /v1/decompress streams
// the identical reconstruction as text.
func TestCompressDecompressRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	const n, eps = 700, 0.25
	body := testSeries(n)
	values, err := readValues(context.Background(), strings.NewReader(body), io.Discard, 512)
	if err != nil {
		t.Fatal(err)
	}

	resp, payload := post(t, ts, "/v1/compress?method=SWING&eps=0.25&start=1000&interval=30", body)
	if resp.StatusCode != 200 {
		t.Fatalf("compress: status %d: %s", resp.StatusCode, payload)
	}
	if got := resp.Header.Get("X-Lossyts-Points"); got != strconv.Itoa(n) {
		t.Fatalf("X-Lossyts-Points = %s, want %d", got, n)
	}
	if got := resp.Header.Get("X-Lossyts-Method"); got != "SWING" {
		t.Fatalf("X-Lossyts-Method = %s, want SWING", got)
	}
	segs, err := strconv.Atoi(resp.Header.Get("X-Lossyts-Segments"))
	if err != nil || segs <= 0 || segs >= n {
		t.Fatalf("X-Lossyts-Segments = %q, want in (0, %d)", resp.Header.Get("X-Lossyts-Segments"), n)
	}

	dresp, text := post(t, ts, "/v1/decompress?method=SWING", string(payload))
	if dresp.StatusCode != 200 {
		t.Fatalf("decompress: status %d: %s", dresp.StatusCode, text)
	}
	if got := dresp.Header.Get("X-Lossyts-Start"); got != "1000" {
		t.Fatalf("X-Lossyts-Start = %s, want 1000", got)
	}
	var rec []float64
	sc := bufio.NewScanner(strings.NewReader(string(text)))
	for sc.Scan() {
		v, err := strconv.ParseFloat(sc.Text(), 64)
		if err != nil {
			t.Fatalf("line %d: %v", len(rec)+1, err)
		}
		rec = append(rec, v)
	}
	if len(rec) != n {
		t.Fatalf("decompressed %d values, want %d", len(rec), n)
	}
	for i := range rec {
		// The codecs enforce a pointwise relative bound (paper Definition 4):
		// |v − v̂| ≤ ε·|v|.
		if d := math.Abs(rec[i] - values[i]); d > eps*math.Abs(values[i])*(1+1e-9) {
			t.Fatalf("value %d: |%v - %v| = %v > eps·|v| = %v", i, rec[i], values[i], d, eps*math.Abs(values[i]))
		}
	}
}

// TestForecastEndpoint runs one full grid cell over HTTP and checks the
// response carries the paper's quantities: baseline metrics, compression
// ratio, type error, transformed metrics, and TFE.
func TestForecastEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, out := post(t, ts,
		"/v1/forecast?model=DLinear&method=PMC&eps=0.5&input=24&horizon=8&period=48&epochs=2&seed=1",
		testSeries(1200))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	var fr forecastResponse
	if err := json.Unmarshal(out, &fr); err != nil {
		t.Fatalf("decoding response: %v (%s)", err, out)
	}
	if fr.Model != "DLinear" || fr.N != 1200 || fr.Windows <= 0 {
		t.Fatalf("header fields wrong: %+v", fr)
	}
	if !(fr.Baseline.NRMSE > 0) || !(fr.Baseline.RMSE > 0) {
		t.Fatalf("degenerate baseline metrics: %+v", fr.Baseline)
	}
	if fr.CR <= 1 {
		t.Fatalf("CR = %v, want > 1 on a smooth series at eps=0.5", fr.CR)
	}
	if fr.TE == nil || fr.Transformed == nil || fr.TFE == nil {
		t.Fatalf("missing compression-leg fields: %+v", fr)
	}
	if !(fr.TE.NRMSE >= 0) || !(fr.Transformed.NRMSE > 0) {
		t.Fatalf("degenerate TE/transformed metrics: te=%+v tm=%+v", fr.TE, fr.Transformed)
	}

	// The same request again must be answered from the durable cache,
	// byte-identically.
	resp2, out2 := post(t, ts,
		"/v1/forecast?model=DLinear&method=PMC&eps=0.5&input=24&horizon=8&period=48&epochs=2&seed=1",
		testSeries(1200))
	if resp2.StatusCode != 200 {
		t.Fatalf("repeat: status %d: %s", resp2.StatusCode, out2)
	}
	if resp2.Header.Get("X-Lossyts-Cache") != "hit" {
		t.Fatalf("repeat request: X-Lossyts-Cache = %q, want hit", resp2.Header.Get("X-Lossyts-Cache"))
	}
	if string(out) != string(out2) {
		t.Fatal("cached response differs from computed response")
	}
}

// TestRecommendSweep checks the series-mode sweep picks the highest-CR
// operating point within the tolerance and reports every candidate.
func TestRecommendSweep(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, out := post(t, ts, "/v1/recommend?maxte=0.2&methods=PMC,SWING&bounds=0.05,0.5", testSeries(600))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	var rr recommendResponse
	if err := json.Unmarshal(out, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Source != "series" || len(rr.Candidates) != 4 {
		t.Fatalf("want 4 candidates from a 2x2 sweep, got %+v", rr)
	}
	if !rr.Found {
		t.Fatalf("no recommendation found: %+v", rr)
	}
	var bestOK float64 = -1
	for _, c := range rr.Candidates {
		if c.OK && c.CR > bestOK {
			bestOK = c.CR
		}
	}
	if rr.CR != bestOK {
		t.Fatalf("recommended CR %v is not the best qualifying candidate %v", rr.CR, bestOK)
	}
	if rr.TE > rr.MaxTE {
		t.Fatalf("recommended TE %v exceeds tolerance %v", rr.TE, rr.MaxTE)
	}
}

// TestOversizedPayload413 proves the per-request memory cap: a body past
// MaxBodyBytes is rejected with 413, on both text and binary endpoints.
func TestOversizedPayload413(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxBodyBytes: 1024})
	big := testSeries(2000) // ~20 KB
	for _, path := range []string{"/v1/compress?method=PMC", "/v1/decompress?method=PMC", "/v1/recommend"} {
		resp, out := post(t, ts, path, big)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s: status = %d, want 413 (body: %s)", path, resp.StatusCode, out)
		}
	}
}

// TestClientCancellationPropagates cancels a forecast request whose training
// budget (100k epochs) could never finish in test time, at the moment the
// computation starts: the request can only come back promptly if the request
// context reaches the trainer's cancellation checks. The handler must answer
// 499 and count the cancellation, and the aborted result must not be cached.
func TestClientCancellationPropagates(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The hook runs on the singleflight leader right before compute: the
	// cancel lands after body parsing, before training — deterministically
	// mid-request.
	s.onCompute = func(string) { cancel() }

	req := httptest.NewRequest("POST",
		"/v1/forecast?model=GRU&input=24&horizon=8&epochs=100000&seed=1",
		strings.NewReader(testSeries(1200))).WithContext(ctx)
	rec := httptest.NewRecorder()
	start := time.Now()
	s.Handler().ServeHTTP(rec, req)
	elapsed := time.Since(start)

	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("status = %d, want %d (body: %s)", rec.Code, StatusClientClosedRequest, rec.Body)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v; the context is not reaching the trainer", elapsed)
	}
	if got := s.Stats().Cancelled; got != 1 {
		t.Fatalf("Stats().Cancelled = %d, want 1", got)
	}
	if got := s.CacheLen(); got != 0 {
		t.Fatalf("aborted computation was cached: CacheLen = %d", got)
	}
}

// TestCancellationDuringBodyRead covers the other cancellation surface: the
// client vanishes while the body is still streaming in. The handler must
// abandon the parse and record a cancellation, not an error.
func TestCancellationDuringBodyRead(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST", ts.URL+"/v1/compress?method=PMC", pr)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req = req.WithContext(ctx)

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
			t.Error("request succeeded despite cancellation")
		}
	}()
	if _, err := io.WriteString(pw, "1.0 2.0 3.0 "); err != nil {
		t.Fatal(err)
	}
	cancel()
	// Tear the body down with an error (not a clean Close, which would mean
	// "body complete" and could race the cancel into a successful upload):
	// the transport aborts the request and closes the connection, and the
	// client's write loop — parked on the pipe — unblocks.
	pw.CloseWithError(io.ErrUnexpectedEOF)
	<-done

	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Cancelled == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("cancellation never recorded: stats %+v", s.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStatsAndHealth covers the observability endpoints.
func TestStatsAndHealth(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	if _, out := post(t, ts, "/v1/compress?method=PMC", testSeries(100)); len(out) == 0 {
		t.Fatal("empty compress response")
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Requests != 1 || st.Computations != 1 {
		t.Fatalf("stats = %+v, want 1 request / 1 computation", st)
	}
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != 200 {
		t.Fatalf("healthz: %d", hresp.StatusCode)
	}
}
