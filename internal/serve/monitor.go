package serve

import (
	"encoding/json"
	"net/http"

	"lossyts/internal/compress"
	"lossyts/internal/core"
	"lossyts/internal/datasets"
)

// maxMonitorScale caps the stream length a single /v1/monitor request may
// demand: sessions run synchronously inside the request, so an uncapped
// scale would let one query hold a worker for a full-dataset online run.
const maxMonitorScale = 0.05

// handleMonitor runs one drift-aware monitoring session over a generated
// stream — the serving-plane face of core.Session. The session is pure
// compute on deterministic inputs, so the full report memoises through the
// same WorkExec store/singleflight path as the other endpoints: concurrent
// identical monitor requests run one session.
func (s *Server) handleMonitor(w http.ResponseWriter, r *http.Request) error {
	ctx := r.Context()
	q := r.URL.Query()
	dataset := q.Get("dataset")
	if dataset == "" {
		return badRequest("parameter dataset is required")
	}
	if _, ok := datasets.SpecOf(dataset); !ok {
		return badRequest("unknown dataset %q", dataset)
	}
	scale, err := floatParam(r, "scale", 0.01)
	if err != nil {
		return err
	}
	if scale <= 0 || scale > maxMonitorScale {
		return badRequest("parameter scale must be in (0, %g], got %v", maxMonitorScale, scale)
	}
	seed, err := intParam(r, "seed", 1)
	if err != nil {
		return err
	}
	method := compress.Method(q.Get("method"))
	if method == "" {
		method = compress.MethodPMC
	}
	if _, err := compress.New(method); err != nil {
		return err
	}
	eps, err := floatParam(r, "eps", 0.05)
	if err != nil {
		return err
	}
	if eps < 0 {
		return badRequest("parameter eps must be non-negative, got %v", eps)
	}
	spikes, err := intParam(r, "spikes", 8)
	if err != nil {
		return err
	}
	driftAt, err := floatParam(r, "driftat", 0.7)
	if err != nil {
		return err
	}
	threshold, err := floatParam(r, "threshold", 9)
	if err != nil {
		return err
	}
	model := q.Get("model")

	opts := core.SessionOptions{
		Dataset:          dataset,
		Scale:            scale,
		Seed:             seed,
		Method:           method,
		Epsilon:          eps,
		Model:            model,
		ChunkSize:        s.opts.ChunkSize,
		Spikes:           int(spikes),
		DriftAt:          driftAt,
		AnomalyThreshold: threshold,
	}
	if model != "" {
		// The serving plane's reduced training budget, like /v1/forecast.
		opts.Forecast = s.opts.Forecast
	}
	sess, err := core.NewSession(opts)
	if err != nil {
		return badRequest("%v", err)
	}

	rh := newRequestHash("monitor")
	rh.param("dataset", dataset)
	rh.param("scale", scale)
	rh.param("seed", seed)
	rh.param("method", method)
	rh.param("eps", eps)
	rh.param("spikes", spikes)
	rh.param("driftat", driftAt)
	rh.param("threshold", threshold)
	rh.param("model", model)
	rh.param("chunk", s.opts.ChunkSize)
	out, err := s.cached(ctx, w, rh.key(), func() ([]byte, error) {
		rep, err := sess.Run(ctx)
		if err != nil {
			return nil, err
		}
		return json.Marshal(rep)
	})
	if err != nil {
		return err
	}
	w.Header().Set("Content-Type", "application/json")
	_, err = w.Write(out)
	return err
}
