package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"lossyts/internal/core"
)

// TestMonitorEndpoint drives /v1/monitor end to end: a session runs, the
// report parses, and the identical second request is a cache hit.
func TestMonitorEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	url := ts.URL + "/v1/monitor?dataset=ElecDem&scale=0.005&seed=7&method=PMC&eps=0.05&spikes=5&driftat=0.7&threshold=9"
	resp, err := ts.Client().Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rep core.SessionReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("report does not parse: %v\n%s", err, body)
	}
	if rep.Points == 0 || rep.Dataset != "ElecDem" {
		t.Fatalf("empty report: %+v", rep)
	}
	if rep.DriftInjectedAt < 0 {
		t.Fatal("drift not injected")
	}

	// The identical request memoises: no second session runs.
	before := s.Stats().Computations
	resp2, err := ts.Client().Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body2, err := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := resp2.Header.Get("X-Lossyts-Cache"); got != "hit" {
		t.Fatalf("second request not served from cache: %q", got)
	}
	if s.Stats().Computations != before {
		t.Fatal("second identical request recomputed the session")
	}
	if string(body) != string(body2) {
		t.Fatal("cached report differs from computed report")
	}
}

// TestMonitorEndpointValidation pins the 400 paths.
func TestMonitorEndpointValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, tc := range []struct {
		name, query string
	}{
		{"missing dataset", ""},
		{"unknown dataset", "dataset=NoSuch"},
		{"scale too large", "dataset=ElecDem&scale=0.5"},
		{"negative eps", "dataset=ElecDem&scale=0.005&eps=-1"},
		{"unknown method", "dataset=ElecDem&scale=0.005&method=NOPE"},
		{"unknown model", "dataset=ElecDem&scale=0.005&model=NoSuchModel"},
		{"drift inside warmup", "dataset=ElecDem&scale=0.005&driftat=0.01"},
	} {
		resp, err := ts.Client().Get(ts.URL + "/v1/monitor?" + tc.query)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}
