package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(t *testing.T, got, want, tol float64, name string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (tol %v)", name, got, want, tol)
	}
}

func TestRMSE(t *testing.T) {
	got, err := RMSE([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil || got != 0 {
		t.Fatalf("identical RMSE = %v, %v", got, err)
	}
	got, err = RMSE([]float64{0, 0}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, got, math.Sqrt(12.5), 1e-12, "RMSE")
	if _, err := RMSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := RMSE(nil, nil); err == nil {
		t.Error("empty should error")
	}
}

func TestNRMSE(t *testing.T) {
	x := []float64{0, 10}
	y := []float64{1, 9}
	got, err := NRMSE(x, y)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, got, 0.1, 1e-12, "NRMSE")
	if _, err := NRMSE([]float64{5, 5}, []float64{5, 5}); err == nil {
		t.Error("constant reference should error")
	}
}

func TestRSE(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	// Predicting the mean of x gives RSE exactly 1.
	y := []float64{2.5, 2.5, 2.5, 2.5}
	got, err := RSE(x, y)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, got, 1, 1e-12, "RSE")
	perfect, _ := RSE(x, x)
	if perfect != 0 {
		t.Errorf("perfect RSE = %v", perfect)
	}
	if _, err := RSE([]float64{1, 1}, []float64{1, 1}); err == nil {
		t.Error("constant reference should error")
	}
}

func TestEvaluate(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1.1, 2.1, 2.9, 4.2, 4.8}
	m, err := Evaluate(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if m.R < 0.99 {
		t.Errorf("R = %v, want ~1", m.R)
	}
	if m.RMSE <= 0 || m.NRMSE <= 0 || m.RSE <= 0 {
		t.Errorf("metrics should be positive: %+v", m)
	}
}

func TestTFE(t *testing.T) {
	got, err := TFE(0.12, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, got, 0.2, 1e-12, "TFE")
	improved, _ := TFE(0.08, 0.10)
	if improved >= 0 {
		t.Errorf("improvement should give negative TFE, got %v", improved)
	}
	if _, err := TFE(1, 0); err == nil {
		t.Error("zero baseline should error")
	}
}

func TestMeanVarianceStd(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	almost(t, Mean(x), 5, 1e-12, "Mean")
	almost(t, Variance(x), 4, 1e-12, "Variance")
	almost(t, Std(x), 2, 1e-12, "Std")
	almost(t, SampleVariance(x), 32.0/7, 1e-12, "SampleVariance")
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs should be 0")
	}
}

func TestRMSENonNegativeProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		for _, v := range append(a[:n:n], b[:n]...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e150 {
				return true
			}
		}
		r, err := RMSE(a[:n], b[:n])
		return err == nil && r >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDescribe(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	d, err := Describe(x)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len != 10 || d.Min != 1 || d.Max != 10 {
		t.Fatalf("describe = %+v", d)
	}
	almost(t, d.Mean, 5.5, 1e-12, "mean")
	almost(t, d.Q1, 3.25, 1e-12, "Q1")
	almost(t, d.Q3, 7.75, 1e-12, "Q3")
	almost(t, d.RIQD, (7.75-3.25)/5.5*100, 1e-9, "rIQD")
	if _, err := Describe(nil); err == nil {
		t.Error("empty describe should error")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4}
	almost(t, Quantile(sorted, 0), 1, 0, "q0")
	almost(t, Quantile(sorted, 1), 4, 0, "q1")
	almost(t, Quantile(sorted, 0.5), 2.5, 1e-12, "q0.5")
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	almost(t, Quantile([]float64{7}, 0.9), 7, 0, "single")
}

func TestMedian(t *testing.T) {
	almost(t, Median([]float64{3, 1, 2}), 2, 0, "odd median")
	almost(t, Median([]float64{4, 1, 3, 2}), 2.5, 1e-12, "even median")
	if !math.IsNaN(Median(nil)) {
		t.Error("empty median should be NaN")
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	almost(t, m, 5, 1e-12, "MeanStd mean")
	almost(t, s, math.Sqrt(32.0/7), 1e-12, "MeanStd std")
}

func TestEvaluateConstantPrediction(t *testing.T) {
	// A constant prediction leaves R undefined; Evaluate reports 0.
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 2, 2, 2}
	m, err := Evaluate(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if m.R != 0 {
		t.Errorf("R = %v, want 0 for constant prediction", m.R)
	}
	if m.RMSE <= 0 {
		t.Errorf("RMSE = %v", m.RMSE)
	}
	// Constant reference still errors (NRMSE undefined).
	if _, err := Evaluate([]float64{3, 3}, []float64{1, 2}); err == nil {
		t.Error("constant reference should error")
	}
}

func TestEvaluateLengthMismatch(t *testing.T) {
	if _, err := Evaluate([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
}
