package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	got, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, got, 1, 1e-12, "perfect positive Pearson")
	neg := []float64{10, 8, 6, 4, 2}
	got, _ = Pearson(x, neg)
	almost(t, got, -1, 1e-12, "perfect negative Pearson")
	if _, err := Pearson(x, []float64{1, 1, 1, 1, 1}); err == nil {
		t.Error("constant input should error")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should error")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Spearman only cares about ranks: any monotone transform gives 1.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 8, 27, 64, 125}
	got, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, got, 1, 1e-12, "monotone Spearman")
}

func TestSpearmanTies(t *testing.T) {
	x := []float64{1, 2, 2, 3}
	y := []float64{10, 20, 20, 30}
	got, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, got, 1, 1e-12, "tied Spearman")
}

func TestRanks(t *testing.T) {
	got := Ranks([]float64{30, 10, 20})
	want := []float64{3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
	// Average ranks for ties: values {5,5} at sorted positions 2,3 -> rank 2.5.
	got = Ranks([]float64{5, 1, 5})
	want = []float64{2.5, 1, 2.5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks with ties = %v, want %v", got, want)
		}
	}
}

func TestKLDivergence(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{0.5, 0.5}
	got, err := KLDivergence(p, q)
	if err != nil || got != 0 {
		t.Fatalf("KL(p||p) = %v, %v", got, err)
	}
	q2 := []float64{0.9, 0.1}
	got, _ = KLDivergence(p, q2)
	want := 0.5*math.Log(0.5/0.9) + 0.5*math.Log(0.5/0.1)
	almost(t, got, want, 1e-12, "KL")
	if got <= 0 {
		t.Error("KL of different distributions should be positive")
	}
	if _, err := KLDivergence(p, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestKLNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		p := make([]float64, n)
		q := make([]float64, n)
		var sp, sq float64
		for i := range p {
			p[i], q[i] = rng.Float64(), rng.Float64()+1e-6
			sp += p[i]
			sq += q[i]
		}
		for i := range p {
			p[i] /= sp
			q[i] /= sq
		}
		d, err := KLDivergence(p, q)
		return err == nil && d >= -1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0, 0.5, 1, 2.5, 9.9}, 0, 10, 10)
	var sum float64
	for _, p := range h {
		sum += p
	}
	almost(t, sum, 1, 1e-12, "histogram mass")
	if h[0] != 0.4 { // 0 and 0.5; the value 1.0 falls on the bin-1 boundary
		t.Fatalf("bin 0 = %v, want 0.4", h[0])
	}
	if h[1] != 0.2 || h[2] != 0.2 || h[9] != 0.2 {
		t.Fatalf("bins = %v", h)
	}
	// Out-of-range values clamp to edge bins.
	h = Histogram([]float64{-5, 50}, 0, 10, 2)
	if h[0] != 0.5 || h[1] != 0.5 {
		t.Fatalf("clamped histogram = %v", h)
	}
	if got := Histogram(nil, 0, 1, 3); len(got) != 3 {
		t.Fatal("empty histogram should keep bin count")
	}
}

func TestOLSExactLine(t *testing.T) {
	// y = 3x + 2 exactly.
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{2, 5, 8, 11, 14}
	slope, intercept, slopeSE, interceptSE, err := SimpleOLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, slope, 3, 1e-9, "slope")
	almost(t, intercept, 2, 1e-9, "intercept")
	if slopeSE > 1e-6 || interceptSE > 1e-6 {
		t.Errorf("exact fit should have ~zero SEs, got %v %v", slopeSE, interceptSE)
	}
}

func TestOLSNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 500
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() * 10
		y[i] = 4*x[i] - 1 + rng.NormFloat64()*0.5
	}
	slope, intercept, slopeSE, _, err := SimpleOLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, slope, 4, 0.1, "noisy slope")
	almost(t, intercept, -1, 0.3, "noisy intercept")
	if slopeSE <= 0 || slopeSE > 0.1 {
		t.Errorf("slope SE = %v, want small positive", slopeSE)
	}
}

func TestOLSMultivariate(t *testing.T) {
	// y = 2a - 3b + 5
	rows := [][]float64{{1, 1}, {2, 0}, {0, 2}, {3, 1}, {1, 3}, {2, 2}}
	y := make([]float64, len(rows))
	for i, r := range rows {
		y[i] = 2*r[0] - 3*r[1] + 5
	}
	res, err := OLS(rows, y)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, res.Coef[0], 2, 1e-9, "beta a")
	almost(t, res.Coef[1], -3, 1e-9, "beta b")
	almost(t, res.Coef[2], 5, 1e-9, "intercept")
	almost(t, res.R2, 1, 1e-9, "R2")
	almost(t, res.Predict([]float64{4, 4}), 2*4-3*4+5, 1e-9, "predict")
}

func TestOLSErrors(t *testing.T) {
	if _, err := OLS(nil, nil); err == nil {
		t.Error("empty OLS should error")
	}
	if _, err := OLS([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("more coefficients than rows should error")
	}
	// Perfectly collinear columns -> singular.
	rows := [][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}}
	if _, err := OLS(rows, []float64{1, 2, 3, 4}); err == nil {
		t.Error("collinear design should error")
	}
}

func TestKneedleConvexIncreasing(t *testing.T) {
	// y = x^4 on [0,1]: elbow of the convex increasing curve sits where the
	// distance below the diagonal is maximal (x = (1/4)^(1/3) ~ 0.63).
	n := 101
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i) / float64(n-1)
		y[i] = math.Pow(x[i], 4)
	}
	k, err := Kneedle(x, y, Convex, Increasing, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if x[k] < 0.5 || x[k] > 0.75 {
		t.Errorf("convex increasing knee at x=%v, want ~0.63", x[k])
	}
}

func TestKneedleConcaveIncreasing(t *testing.T) {
	// y = sqrt(x): knee where distance above the diagonal is maximal (x=0.25).
	n := 101
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i) / float64(n-1)
		y[i] = math.Sqrt(x[i])
	}
	k, err := Kneedle(x, y, Concave, Increasing, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if x[k] < 0.15 || x[k] > 0.35 {
		t.Errorf("concave increasing knee at x=%v, want ~0.25", x[k])
	}
}

func TestKneedleConvexDecreasing(t *testing.T) {
	// y = 1/(1+10x): steep drop then flat; knee near small x.
	n := 101
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i) / float64(n-1)
		y[i] = 1 / (1 + 10*x[i])
	}
	k, err := Kneedle(x, y, Convex, Decreasing, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if x[k] > 0.4 {
		t.Errorf("convex decreasing knee at x=%v, want small", x[k])
	}
}

func TestKneedleUnsortedInput(t *testing.T) {
	// The knee index must refer to the caller's (unsorted) slice.
	x := []float64{1, 0, 0.5, 0.25, 0.75}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = math.Pow(v, 4)
	}
	k, err := Kneedle(x, y, Convex, Increasing, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if k < 0 || k >= len(x) {
		t.Fatalf("knee index %d out of range", k)
	}
	if x[k] < 0.25 || x[k] > 0.8 {
		t.Errorf("unsorted knee at x=%v", x[k])
	}
}

func TestKneedleErrors(t *testing.T) {
	if _, err := Kneedle([]float64{1, 2}, []float64{1, 2}, Concave, Increasing, 1); err == nil {
		t.Error("too few points should error")
	}
	if _, err := Kneedle([]float64{1, 1, 1}, []float64{1, 2, 3}, Concave, Increasing, 1); err == nil {
		t.Error("constant x should error")
	}
	if _, err := Kneedle([]float64{1, 2, 3}, []float64{2, 2, 2}, Concave, Increasing, 1); err == nil {
		t.Error("constant y should error")
	}
}
