package stats

import (
	"errors"
	"fmt"
	"math"
)

// OLSResult holds an ordinary least squares fit: coefficients (intercept
// last matches the paper's [θ1, θ0] presentation for the simple model
// CR = θ1·TE + θ0), their standard errors, and goodness-of-fit summaries.
type OLSResult struct {
	Coef   []float64 // one per regressor column, then intercept
	SE     []float64 // standard error per coefficient
	R2     float64
	Resid  []float64
	Sigma2 float64 // residual variance estimate
}

// OLS fits y = X·β + intercept by least squares via normal equations with
// Gaussian elimination (partial pivoting). X is row-major: one row per
// observation. An intercept column is appended automatically.
func OLS(x [][]float64, y []float64) (*OLSResult, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, errors.New("stats: OLS needs matching, non-empty X and y")
	}
	p := len(x[0]) + 1 // + intercept
	if n < p {
		return nil, fmt.Errorf("stats: OLS with %d observations cannot fit %d coefficients", n, p)
	}
	// Build design matrix with intercept in last column.
	design := make([][]float64, n)
	for i, row := range x {
		if len(row) != p-1 {
			return nil, fmt.Errorf("stats: ragged design row %d", i)
		}
		design[i] = append(append(make([]float64, 0, p), row...), 1)
	}
	// Normal equations: (X'X) β = X'y.
	xtx := make([][]float64, p)
	xty := make([]float64, p)
	for a := 0; a < p; a++ {
		xtx[a] = make([]float64, p)
		for b := 0; b < p; b++ {
			var s float64
			for i := 0; i < n; i++ {
				s += design[i][a] * design[i][b]
			}
			xtx[a][b] = s
		}
		var s float64
		for i := 0; i < n; i++ {
			s += design[i][a] * y[i]
		}
		xty[a] = s
	}
	inv, err := invert(xtx)
	if err != nil {
		return nil, err
	}
	beta := make([]float64, p)
	for a := 0; a < p; a++ {
		for b := 0; b < p; b++ {
			beta[a] += inv[a][b] * xty[b]
		}
	}
	res := &OLSResult{Coef: beta, Resid: make([]float64, n)}
	var ssRes, ssTot float64
	ybar := Mean(y)
	for i := 0; i < n; i++ {
		var fit float64
		for a := 0; a < p; a++ {
			fit += design[i][a] * beta[a]
		}
		r := y[i] - fit
		res.Resid[i] = r
		ssRes += r * r
		d := y[i] - ybar
		ssTot += d * d
	}
	if ssTot > 0 {
		res.R2 = 1 - ssRes/ssTot
	}
	dof := n - p
	if dof < 1 {
		dof = 1
	}
	res.Sigma2 = ssRes / float64(dof)
	res.SE = make([]float64, p)
	for a := 0; a < p; a++ {
		res.SE[a] = math.Sqrt(res.Sigma2 * inv[a][a])
	}
	return res, nil
}

// SimpleOLS fits y = θ1·x + θ0 and returns slope, intercept and their
// standard errors, the exact quantities reported in the paper's Table 3.
func SimpleOLS(x, y []float64) (slope, intercept, slopeSE, interceptSE float64, err error) {
	rows := make([][]float64, len(x))
	for i, v := range x {
		rows[i] = []float64{v}
	}
	res, err := OLS(rows, y)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	return res.Coef[0], res.Coef[1], res.SE[0], res.SE[1], nil
}

// Predict evaluates the fitted model on a new row (without intercept
// column; the intercept is added automatically).
func (r *OLSResult) Predict(row []float64) float64 {
	var y float64
	for i, v := range row {
		y += r.Coef[i] * v
	}
	return y + r.Coef[len(r.Coef)-1]
}

// invert computes the inverse of a square matrix by Gauss-Jordan
// elimination with partial pivoting.
func invert(m [][]float64) ([][]float64, error) {
	n := len(m)
	a := make([][]float64, n)
	inv := make([][]float64, n)
	for i := 0; i < n; i++ {
		a[i] = append([]float64(nil), m[i]...)
		inv[i] = make([]float64, n)
		inv[i][i] = 1
	}
	for col := 0; col < n; col++ {
		// Pivot: largest magnitude in this column at or below the diagonal.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-12 {
			return nil, errors.New("stats: singular matrix in OLS")
		}
		a[col], a[piv] = a[piv], a[col]
		inv[col], inv[piv] = inv[piv], inv[col]
		d := a[col][col]
		for j := 0; j < n; j++ {
			a[col][j] /= d
			inv[col][j] /= d
		}
		for r := 0; r < n; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col]
			for j := 0; j < n; j++ {
				a[r][j] -= f * a[col][j]
				inv[r][j] -= f * inv[col][j]
			}
		}
	}
	return inv, nil
}
