package stats

import (
	"errors"
	"math"
	"sort"
)

// Pearson returns the Pearson product-moment correlation coefficient
// between x and y.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrLengthMismatch
	}
	if len(x) < 2 {
		return 0, errors.New("stats: correlation needs at least 2 points")
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: correlation undefined for constant input")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns Spearman's rank correlation coefficient, the statistic
// the paper uses to rank characteristics by their relation to TFE (Table 4).
// Ties receive average ranks.
func Spearman(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrLengthMismatch
	}
	return Pearson(Ranks(x), Ranks(y))
}

// Ranks returns the 1-based average ranks of x (ties share the mean of the
// ranks they span).
func Ranks(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		// positions i..j share the same value; average rank is mean of i+1..j+1
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// KLDivergence returns the Kullback-Leibler divergence D(p || q) of two
// discrete distributions. Entries where p is zero contribute nothing; a
// small epsilon keeps q away from zero (matching the smoothing used by
// tsfeatures' max_kl_shift).
func KLDivergence(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, ErrLengthMismatch
	}
	const eps = 1e-12
	var d float64
	for i := range p {
		if p[i] <= 0 {
			continue
		}
		d += p[i] * math.Log(p[i]/math.Max(q[i], eps))
	}
	return d, nil
}

// Histogram bins values into nbins equal-width bins over [lo, hi] and
// returns the normalised bin probabilities. Values outside the range are
// clamped into the edge bins.
func Histogram(values []float64, lo, hi float64, nbins int) []float64 {
	p := make([]float64, nbins)
	if len(values) == 0 || nbins <= 0 || hi <= lo {
		return p
	}
	w := (hi - lo) / float64(nbins)
	for _, v := range values {
		b := int((v - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		p[b]++
	}
	for i := range p {
		p[i] /= float64(len(values))
	}
	return p
}
