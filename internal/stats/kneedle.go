package stats

import (
	"errors"
	"sort"
)

// Curve describes the shape of the curve handed to Kneedle.
type Curve int

// Direction describes whether the curve increases or decreases in x.
type Direction int

// Curve shapes and directions accepted by Kneedle.
const (
	Concave Curve = iota
	Convex
)

const (
	Increasing Direction = iota
	Decreasing
)

// Kneedle locates the knee/elbow point of a curve using the algorithm of
// Satopaa et al., "Finding a 'Kneedle' in a Haystack" (ICDCSW 2011), the
// method the paper uses for its inflection-point analysis (§4.3.2).
// It returns the index (into the caller's slices) of the knee. sensitivity
// is the S parameter; 1.0 is the authors' recommended default.
//
// Internally the curve is normalised to the unit square and a difference
// curve is formed that measures how far each point sits from the straight
// line joining the endpoints in the direction of curvature; the knee is the
// first local maximum of that difference that decays by more than
// S·mean(Δx) before a higher maximum appears.
func Kneedle(x, y []float64, curve Curve, dir Direction, sensitivity float64) (int, error) {
	if len(x) != len(y) {
		return 0, ErrLengthMismatch
	}
	n := len(x)
	if n < 3 {
		return 0, errors.New("stats: kneedle needs at least 3 points")
	}
	// Sort by x, remembering the original indices.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i, j := range idx {
		xs[i], ys[i] = x[j], y[j]
	}
	// Normalise to the unit square.
	xn, err := normalizeUnit(xs)
	if err != nil {
		return 0, err
	}
	yn, err := normalizeUnit(ys)
	if err != nil {
		return 0, err
	}
	// Difference curve, oriented so the knee is a maximum. An increasing
	// concave curve bulges above the main diagonal (d = y - x); an
	// increasing convex curve bulges below it (d = x - y); the decreasing
	// variants bulge relative to the anti-diagonal y = 1 - x.
	diff := make([]float64, n)
	for i := range diff {
		switch {
		case curve == Concave && dir == Increasing:
			diff[i] = yn[i] - xn[i]
		case curve == Convex && dir == Increasing:
			diff[i] = xn[i] - yn[i]
		case curve == Concave && dir == Decreasing:
			diff[i] = yn[i] + xn[i] - 1
		default: // Convex, Decreasing
			diff[i] = 1 - xn[i] - yn[i]
		}
	}
	// Mean spacing of the normalised x values sets the threshold decay.
	meanDX := 0.0
	for i := 1; i < n; i++ {
		meanDX += xn[i] - xn[i-1]
	}
	meanDX /= float64(n - 1)

	knee := -1
	for i := 1; i < n-1 && knee < 0; i++ {
		if diff[i] < diff[i-1] || diff[i] < diff[i+1] {
			continue // not a local maximum of the difference curve
		}
		threshold := diff[i] - sensitivity*meanDX
		for j := i + 1; j < n; j++ {
			if diff[j] > diff[i] {
				break // a higher maximum follows; this one is not the knee
			}
			if diff[j] < threshold {
				knee = i
				break
			}
		}
	}
	if knee < 0 {
		// No threshold crossing: fall back to the global maximum of the
		// difference curve, the usual degenerate-case convention.
		knee = 0
		for i := 1; i < n; i++ {
			if diff[i] > diff[knee] {
				knee = i
			}
		}
	}
	return idx[knee], nil
}

func normalizeUnit(v []float64) ([]float64, error) {
	lo, hi := v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		return nil, errors.New("stats: kneedle input is constant")
	}
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = (x - lo) / (hi - lo)
	}
	return out, nil
}
