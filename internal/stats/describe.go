package stats

import (
	"errors"
	"math"
	"sort"
)

// Description holds the descriptive statistics the paper reports for each
// dataset in Table 1.
type Description struct {
	Len  int
	Mean float64
	Min  float64
	Max  float64
	Q1   float64
	Q3   float64
	RIQD float64 // relative interquartile difference (Q3-Q1)/Mean * 100, in percent
}

// Describe computes Table 1 statistics for a value slice.
func Describe(x []float64) (Description, error) {
	if len(x) == 0 {
		return Description{}, errors.New("stats: describe on empty input")
	}
	d := Description{Len: len(x), Mean: Mean(x)}
	sorted := append([]float64(nil), x...)
	sort.Float64s(sorted)
	d.Min, d.Max = sorted[0], sorted[len(sorted)-1]
	d.Q1 = Quantile(sorted, 0.25)
	d.Q3 = Quantile(sorted, 0.75)
	if d.Mean != 0 {
		d.RIQD = (d.Q3 - d.Q1) / math.Abs(d.Mean) * 100
	}
	return d, nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of an already sorted slice
// using linear interpolation between order statistics (type 7, the R and
// NumPy default).
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Median returns the median of x (the slice is not modified).
func Median(x []float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), x...)
	sort.Float64s(sorted)
	return Quantile(sorted, 0.5)
}
