// Package stats implements the statistical machinery of the evaluation:
// the paper's error metrics (RMSE, NRMSE, RSE, R), transformation
// forecasting error, descriptive statistics, ordinary least squares with
// coefficient standard errors, Pearson and Spearman correlation,
// Kullback-Leibler divergence, and the Kneedle elbow-detection algorithm.
package stats

import (
	"errors"
	"math"
)

// ErrLengthMismatch is returned when paired metrics get slices of different
// lengths.
var ErrLengthMismatch = errors.New("stats: input lengths differ")

// RMSE returns the root mean square error between x and y (paper Eq. 5).
func RMSE(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrLengthMismatch
	}
	if len(x) == 0 {
		return 0, errors.New("stats: empty input")
	}
	var ss float64
	for i := range x {
		d := x[i] - y[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(x))), nil
}

// NRMSE returns RMSE normalised by the range of x (paper Eq. 4:
// RMSE / (max(x) - min(x))). x is the reference (raw) series.
func NRMSE(x, y []float64) (float64, error) {
	r, err := RMSE(x, y)
	if err != nil {
		return 0, err
	}
	lo, hi := x[0], x[0]
	for _, v := range x {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		return 0, errors.New("stats: NRMSE undefined for constant reference")
	}
	return r / (hi - lo), nil
}

// RSE returns the root relative squared error (paper Eq. 6):
// sqrt(sum (x-y)^2) / sqrt(sum (x - mean(x))^2).
func RSE(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrLengthMismatch
	}
	if len(x) == 0 {
		return 0, errors.New("stats: empty input")
	}
	mean := Mean(x)
	var num, den float64
	for i := range x {
		d := x[i] - y[i]
		num += d * d
		e := x[i] - mean
		den += e * e
	}
	if den == 0 {
		return 0, errors.New("stats: RSE undefined for constant reference")
	}
	return math.Sqrt(num) / math.Sqrt(den), nil
}

// R returns the Pearson correlation coefficient between x and y, the
// paper's similarity metric for raw-vs-transformed series and for
// forecasting accuracy.
func R(x, y []float64) (float64, error) {
	return Pearson(x, y)
}

// Metrics bundles the paper's four evaluation metrics for one comparison.
type Metrics struct {
	R     float64
	RSE   float64
	RMSE  float64
	NRMSE float64
}

// Evaluate computes all four metrics of predictions y against reference x.
// A constant y (e.g. a series collapsed to one compression segment) leaves
// the correlation undefined; it is reported as 0 rather than an error so
// extreme error bounds remain comparable.
func Evaluate(x, y []float64) (Metrics, error) {
	var m Metrics
	var err error
	if m.RMSE, err = RMSE(x, y); err != nil {
		return m, err
	}
	if m.NRMSE, err = NRMSE(x, y); err != nil {
		return m, err
	}
	if m.RSE, err = RSE(x, y); err != nil {
		return m, err
	}
	if m.R, err = R(x, y); err != nil {
		m.R = 0
	}
	return m, nil
}

// TFE returns the transformation forecasting error (paper Definition 9,
// Eq. 2): the relative change of the forecasting error when the model input
// is the transformed series. transformed and baseline are the distance
// D(F(·), y) on transformed and raw input respectively. Negative values mean
// compression improved forecasting accuracy.
func TFE(transformed, baseline float64) (float64, error) {
	if baseline == 0 {
		return 0, errors.New("stats: TFE undefined for zero baseline error")
	}
	return (transformed - baseline) / baseline, nil
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the population variance (0 for fewer than 2 points).
func Variance(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	var ss float64
	for _, v := range x {
		d := v - m
		ss += d * d
	}
	return ss / float64(len(x))
}

// SampleVariance returns the n-1 normalised variance.
func SampleVariance(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	return Variance(x) * float64(len(x)) / float64(len(x)-1)
}

// Std returns the population standard deviation.
func Std(x []float64) float64 { return math.Sqrt(Variance(x)) }

// MeanStd returns mean and sample standard deviation in one pass-friendly call.
func MeanStd(x []float64) (mean, std float64) {
	return Mean(x), math.Sqrt(SampleVariance(x))
}
