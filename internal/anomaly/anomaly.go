// Package anomaly studies the impact of lossy compression on a second
// analytics task, as the paper calls for in §5 ("Further studies are also
// needed for different types of time series analytics, e.g., anomaly
// detection"). It provides a seasonal residual detector, a spike injector
// for ground-truth construction, and precision/recall scoring, so the
// paper's Algorithm 1 methodology can be replayed with detection F1 in
// place of forecasting accuracy.
package anomaly

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"lossyts/internal/compress"
)

// Detector flags points whose seasonal residual exceeds Threshold robust
// standard deviations. The residual removes a per-phase seasonal profile
// and a rolling level, leaving spikes exposed.
type Detector struct {
	// Period is the seasonal period in steps.
	Period int
	// Threshold is the robust z-score cut-off (default 5 when zero).
	Threshold float64
	// Window is the rolling-level half width (default Period when zero).
	Window int
}

// Detect returns the indices flagged as anomalous, in increasing order.
func (d *Detector) Detect(values []float64) ([]int, error) {
	return d.DetectInto(values, nil)
}

// DetectInto appends the anomalous indices to out and returns the extended
// slice. All scratch memory comes from the shared buffer pools, so a warm
// caller that reuses out allocates nothing per call — the property the
// session loop and the AllocsPerRun pin rely on.
func (d *Detector) DetectInto(values []float64, out []int) ([]int, error) {
	if d.Period < 2 {
		return out, errors.New("anomaly: period must be at least 2")
	}
	if len(values) < 4*d.Period {
		return out, errors.New("anomaly: series shorter than four periods")
	}
	threshold := d.Threshold
	if threshold <= 0 {
		threshold = 5
	}
	w := d.Window
	if w <= 0 {
		w = d.Period
	}
	n := len(values)
	period := d.Period
	// Per-phase robust profile (medians resist the anomalies themselves).
	// The i-th value is the (i/period)-th member of phase i%period, so the
	// phase groups pack into one pooled buffer at closed-form offsets — no
	// per-phase slices.
	full, rem := n/period, n%period
	offset := func(p int) int {
		if p < rem {
			return p * (full + 1)
		}
		return p*(full+1) - (p - rem)
	}
	countOf := func(p int) int {
		if p < rem {
			return full + 1
		}
		return full
	}
	buf := compress.GetFloats(n)[:n]
	defer compress.PutFloats(buf)
	for i, v := range values {
		buf[offset(i%period)+i/period] = v
	}
	scratch := compress.GetFloats(n)
	defer compress.PutFloats(scratch)
	profile := compress.GetFloats(period)[:period]
	defer compress.PutFloats(profile)
	for p := 0; p < period; p++ {
		profile[p] = medianInto(buf[offset(p):offset(p)+countOf(p)], scratch)
	}
	// Residuals after profile and rolling median level.
	deseason := compress.GetFloats(n)[:n]
	defer compress.PutFloats(deseason)
	for i, v := range values {
		deseason[i] = v - profile[i%period]
	}
	resid := compress.GetFloats(n)[:n]
	defer compress.PutFloats(resid)
	for i := range deseason {
		lo := i - w
		if lo < 0 {
			lo = 0
		}
		hi := i + w + 1
		if hi > n {
			hi = n
		}
		resid[i] = deseason[i] - medianInto(deseason[lo:hi], scratch)
	}
	// Robust scale: 1.4826 · MAD. buf's phase copy is spent — reuse it for
	// the absolute residuals.
	for i, r := range resid {
		buf[i] = math.Abs(r)
	}
	sigma := 1.4826 * medianInto(buf, scratch)
	if sigma <= 0 {
		return out, nil
	}
	for i, r := range resid {
		if math.Abs(r) > threshold*sigma {
			out = append(out, i)
		}
	}
	return out, nil
}

// medianInto returns the median of v, sorting a copy held in scratch (which
// must have capacity ≥ len(v)).
func medianInto(v, scratch []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append(scratch[:0], v...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// SpikePlan returns the deterministic injection plan InjectSpikes applies:
// count additive spikes of the given magnitude with alternating sign at
// random, well-separated positions in a length-n series. Positions come back
// in increasing order with their aligned deltas, so an online session can
// compute the plan up front and apply each delta as its index streams past.
func SpikePlan(n, count int, magnitude float64, seed int64) (positions []int, deltas []float64) {
	if count <= 0 || n == 0 {
		return nil, nil
	}
	rng := rand.New(rand.NewSource(seed))
	gap := n / (count + 1)
	if gap < 1 {
		gap = 1
	}
	for k := 1; k <= count; k++ {
		pos := k*gap + rng.Intn(gap/2+1) - gap/4
		if pos < 0 || pos >= n {
			continue
		}
		sign := 1.0
		if k%2 == 0 {
			sign = -1
		}
		positions = append(positions, pos)
		deltas = append(deltas, sign*magnitude)
	}
	return positions, deltas
}

// InjectSpikes returns a copy of values with n additive spikes of the given
// magnitude (alternating sign) at random, well-separated positions, plus
// the injected positions in increasing order.
func InjectSpikes(values []float64, n int, magnitude float64, seed int64) ([]float64, []int) {
	out := append([]float64(nil), values...)
	positions, deltas := SpikePlan(len(values), n, magnitude, seed)
	for i, p := range positions {
		out[p] += deltas[i]
	}
	return out, positions
}

// Score compares detections against ground truth with a position tolerance
// and returns precision, recall, and F1. A detection within tolerance of an
// undetected truth position counts as a hit; each truth position can be
// matched once.
func Score(detected, truth []int, tolerance int) (precision, recall, f1 float64) {
	if len(detected) == 0 && len(truth) == 0 {
		return 1, 1, 1
	}
	matched := make([]bool, len(truth))
	tp := 0
	for _, d := range detected {
		for ti, t := range truth {
			if !matched[ti] && abs(d-t) <= tolerance {
				matched[ti] = true
				tp++
				break
			}
		}
	}
	if len(detected) > 0 {
		precision = float64(tp) / float64(len(detected))
	}
	if len(truth) > 0 {
		recall = float64(tp) / float64(len(truth))
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return precision, recall, f1
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
