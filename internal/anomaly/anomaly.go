// Package anomaly studies the impact of lossy compression on a second
// analytics task, as the paper calls for in §5 ("Further studies are also
// needed for different types of time series analytics, e.g., anomaly
// detection"). It provides a seasonal residual detector, a spike injector
// for ground-truth construction, and precision/recall scoring, so the
// paper's Algorithm 1 methodology can be replayed with detection F1 in
// place of forecasting accuracy.
package anomaly

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// Detector flags points whose seasonal residual exceeds Threshold robust
// standard deviations. The residual removes a per-phase seasonal profile
// and a rolling level, leaving spikes exposed.
type Detector struct {
	// Period is the seasonal period in steps.
	Period int
	// Threshold is the robust z-score cut-off (default 5 when zero).
	Threshold float64
	// Window is the rolling-level half width (default Period when zero).
	Window int
}

// Detect returns the indices flagged as anomalous, in increasing order.
func (d *Detector) Detect(values []float64) ([]int, error) {
	if d.Period < 2 {
		return nil, errors.New("anomaly: period must be at least 2")
	}
	if len(values) < 4*d.Period {
		return nil, errors.New("anomaly: series shorter than four periods")
	}
	threshold := d.Threshold
	if threshold <= 0 {
		threshold = 5
	}
	w := d.Window
	if w <= 0 {
		w = d.Period
	}
	n := len(values)
	// Per-phase robust profile (medians resist the anomalies themselves).
	phaseVals := make([][]float64, d.Period)
	for i, v := range values {
		p := i % d.Period
		phaseVals[p] = append(phaseVals[p], v)
	}
	profile := make([]float64, d.Period)
	for p, vs := range phaseVals {
		profile[p] = median(vs)
	}
	// Residuals after profile and rolling median level.
	deseason := make([]float64, n)
	for i, v := range values {
		deseason[i] = v - profile[i%d.Period]
	}
	resid := make([]float64, n)
	for i := range deseason {
		lo := i - w
		if lo < 0 {
			lo = 0
		}
		hi := i + w + 1
		if hi > n {
			hi = n
		}
		resid[i] = deseason[i] - median(deseason[lo:hi])
	}
	// Robust scale: 1.4826 · MAD.
	sigma := 1.4826 * median(absAll(resid))
	if sigma <= 0 {
		return nil, nil
	}
	var out []int
	for i, r := range resid {
		if math.Abs(r) > threshold*sigma {
			out = append(out, i)
		}
	}
	return out, nil
}

func absAll(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = math.Abs(x)
	}
	return out
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// InjectSpikes returns a copy of values with n additive spikes of the given
// magnitude (alternating sign) at random, well-separated positions, plus
// the injected positions in increasing order.
func InjectSpikes(values []float64, n int, magnitude float64, seed int64) ([]float64, []int) {
	out := append([]float64(nil), values...)
	if n <= 0 || len(values) == 0 {
		return out, nil
	}
	rng := rand.New(rand.NewSource(seed))
	gap := len(values) / (n + 1)
	if gap < 1 {
		gap = 1
	}
	var positions []int
	for k := 1; k <= n; k++ {
		pos := k*gap + rng.Intn(gap/2+1) - gap/4
		if pos < 0 || pos >= len(values) {
			continue
		}
		sign := 1.0
		if k%2 == 0 {
			sign = -1
		}
		out[pos] += sign * magnitude
		positions = append(positions, pos)
	}
	sort.Ints(positions)
	return out, positions
}

// Score compares detections against ground truth with a position tolerance
// and returns precision, recall, and F1. A detection within tolerance of an
// undetected truth position counts as a hit; each truth position can be
// matched once.
func Score(detected, truth []int, tolerance int) (precision, recall, f1 float64) {
	if len(detected) == 0 && len(truth) == 0 {
		return 1, 1, 1
	}
	matched := make([]bool, len(truth))
	tp := 0
	for _, d := range detected {
		for ti, t := range truth {
			if !matched[ti] && abs(d-t) <= tolerance {
				matched[ti] = true
				tp++
				break
			}
		}
	}
	if len(detected) > 0 {
		precision = float64(tp) / float64(len(detected))
	}
	if len(truth) > 0 {
		recall = float64(tp) / float64(len(truth))
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return precision, recall, f1
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
