package anomaly

import (
	"runtime/debug"
	"testing"
)

// withGCOff disables the GC for the test so pooled buffers cannot be evicted
// mid-measurement (the one nondeterminism in sync.Pool reuse).
func withGCOff(t *testing.T) {
	t.Helper()
	old := debug.SetGCPercent(-1)
	t.Cleanup(func() { debug.SetGCPercent(old) })
}

// TestDetectIntoZeroAlloc pins the satellite fix: once the buffer pools are
// warm and the caller reuses its output slice, a Detect pass allocates
// nothing — the property that lets the session loop re-run detection every
// chunk without GC pressure.
func TestDetectIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is not meaningful under -race")
	}
	withGCOff(t)
	base := seasonalBase(2000, 48, 1)
	spiked, _ := InjectSpikes(base, 8, 12, 7)
	d := &Detector{Period: 48, Threshold: 5}
	out := make([]int, 0, 64)
	var err error
	// Warm the pools.
	for i := 0; i < 3; i++ {
		out, err = d.DetectInto(spiked, out[:0])
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(out) == 0 {
		t.Fatal("warmup detected nothing; the measurement would be vacuous")
	}
	allocs := testing.AllocsPerRun(10, func() {
		out, err = d.DetectInto(spiked, out[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DetectInto allocated %.1f times per run, want 0", allocs)
	}
}
