package anomaly

import (
	"math"
	"math/rand"
	"testing"

	"lossyts/internal/compress"
	"lossyts/internal/timeseries"
)

func seasonalBase(n, period int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = 20 + 5*math.Sin(2*math.Pi*float64(i)/float64(period)) + 0.3*rng.NormFloat64()
	}
	return v
}

func TestDetectFindsInjectedSpikes(t *testing.T) {
	base := seasonalBase(2000, 48, 1)
	values, truth := InjectSpikes(base, 8, 10, 2)
	if len(truth) != 8 {
		t.Fatalf("injected %d spikes", len(truth))
	}
	d := &Detector{Period: 48}
	got, err := d.Detect(values)
	if err != nil {
		t.Fatal(err)
	}
	precision, recall, f1 := Score(got, truth, 1)
	if recall < 0.9 {
		t.Errorf("recall = %.2f", recall)
	}
	if precision < 0.8 {
		t.Errorf("precision = %.2f", precision)
	}
	if f1 < 0.85 {
		t.Errorf("f1 = %.2f", f1)
	}
}

func TestDetectCleanSeriesQuiet(t *testing.T) {
	d := &Detector{Period: 48}
	got, err := d.Detect(seasonalBase(2000, 48, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) > 4 {
		t.Errorf("clean series produced %d detections", len(got))
	}
}

func TestDetectErrors(t *testing.T) {
	d := &Detector{Period: 1}
	if _, err := d.Detect(seasonalBase(200, 48, 1)); err == nil {
		t.Error("period 1 should error")
	}
	d = &Detector{Period: 48}
	if _, err := d.Detect(seasonalBase(100, 48, 1)); err == nil {
		t.Error("short series should error")
	}
}

func TestScore(t *testing.T) {
	p, r, f1 := Score([]int{10, 50}, []int{11, 90}, 2)
	if p != 0.5 || r != 0.5 || math.Abs(f1-0.5) > 1e-12 {
		t.Fatalf("score = %v %v %v", p, r, f1)
	}
	// Two detections cannot both match one truth position.
	p, r, _ = Score([]int{10, 11}, []int{10}, 2)
	if p != 0.5 || r != 1 {
		t.Fatalf("double match: p=%v r=%v", p, r)
	}
	p, r, f1 = Score(nil, nil, 1)
	if p != 1 || r != 1 || f1 != 1 {
		t.Fatal("empty/empty should be perfect")
	}
	p, r, f1 = Score(nil, []int{5}, 1)
	if p != 0 || r != 0 || f1 != 0 {
		t.Fatal("missing everything should be zero")
	}
}

func TestInjectSpikes(t *testing.T) {
	base := make([]float64, 100)
	out, pos := InjectSpikes(base, 4, 5, 7)
	if len(pos) == 0 {
		t.Fatal("no spikes injected")
	}
	for _, p := range pos {
		if out[p] == 0 {
			t.Fatalf("no spike at %d", p)
		}
	}
	// The original is untouched.
	for _, v := range base {
		if v != 0 {
			t.Fatal("InjectSpikes mutated its input")
		}
	}
	if out2, pos2 := InjectSpikes(base, 0, 5, 7); len(pos2) != 0 || out2[0] != 0 {
		t.Fatal("zero spikes should be a no-op")
	}
}

// TestCompressionImpactOnDetection replays the paper's methodology with
// anomaly detection as the analytics task: detection quality should survive
// moderate lossy compression (the finding of Hollmig et al. for change
// detection, discussed in the paper's §6.3) but eventually degrade as the
// bound destroys the spikes.
func TestCompressionImpactOnDetection(t *testing.T) {
	base := seasonalBase(2400, 48, 11)
	values, truth := InjectSpikes(base, 10, 12, 12)
	s := timeseries.New("a", 0, 600, values)
	d := &Detector{Period: 48}

	f1At := func(eps float64) float64 {
		c, err := (compress.PMC{}).Compress(s, eps)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := c.Decompress()
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.Detect(dec.Values)
		if err != nil {
			t.Fatal(err)
		}
		_, _, f1 := Score(got, truth, 1)
		return f1
	}
	light := f1At(0.02)
	heavy := f1At(0.8)
	if light < 0.8 {
		t.Errorf("light compression F1 = %.2f, want detection to survive", light)
	}
	if heavy >= light {
		t.Errorf("extreme compression F1 %.2f should fall below light %.2f", heavy, light)
	}
}
