package anomaly

import (
	"fmt"

	"lossyts/internal/timeseries"
)

// StreamDetector is the online form of Detector: it keeps a sliding window
// of the reconstructed stream and, after each chunk, re-runs detection over
// the window but only emits indices that have become stable — points whose
// rolling-median context (w future points) is complete — so each anomaly is
// reported exactly once, with a bounded detection delay, no matter how the
// stream is chunked.
type StreamDetector struct {
	det     Detector
	ring    *timeseries.Ring
	scored  int64 // global index below which detections were already emitted
	scratch []float64
	local   []int
}

// NewStreamDetector wraps a Detector in a sliding window of the given
// capacity (≤ 0 selects 8·period; the minimum is 4·period plus the rolling
// half-width, the least context a stable detection needs).
func NewStreamDetector(d Detector, window int) (*StreamDetector, error) {
	if d.Period < 2 {
		return nil, fmt.Errorf("anomaly: stream detector period must be at least 2, got %d", d.Period)
	}
	w := d.Window
	if w <= 0 {
		w = d.Period
	}
	if window <= 0 {
		window = 8 * d.Period
	}
	if min := 4*d.Period + w; window < min {
		window = min
	}
	return &StreamDetector{det: d, ring: timeseries.NewRing(window)}, nil
}

// Window returns the sliding-window capacity.
func (s *StreamDetector) Window() int { return s.ring.Cap() }

// halfWidth returns the detector's effective rolling half-width.
func (s *StreamDetector) halfWidth() int {
	if s.det.Window > 0 {
		return s.det.Window
	}
	return s.det.Period
}

// Push feeds a batch of reconstructed values and returns the global stream
// indices of newly stable detections, in increasing order.
func (s *StreamDetector) Push(values []float64) ([]int64, error) {
	for _, v := range values {
		s.ring.Push(v)
	}
	return s.emit(s.ring.Total() - int64(s.halfWidth()))
}

// Finish flushes the tail: it scores the final points whose full rolling
// context will never arrive, using the truncated context the batch detector
// applies at series end.
func (s *StreamDetector) Finish() ([]int64, error) {
	return s.emit(s.ring.Total())
}

// emit detects over the current window and reports detections in the global
// index range [scored, stableTo).
func (s *StreamDetector) emit(stableTo int64) ([]int64, error) {
	if s.ring.Len() < 4*s.det.Period {
		return nil, nil
	}
	if stableTo <= s.scored {
		return nil, nil
	}
	s.scratch = s.ring.CopyTo(s.scratch[:0])
	var err error
	s.local, err = s.det.DetectInto(s.scratch, s.local[:0])
	if err != nil {
		return nil, err
	}
	first := s.ring.FirstIndex()
	var out []int64
	for _, li := range s.local {
		g := first + int64(li)
		if g >= s.scored && g < stableTo {
			out = append(out, g)
		}
	}
	s.scored = stableTo
	return out, nil
}

// StreamDetectorState is a stream detector's serialisable snapshot.
type StreamDetectorState struct {
	Period    int                  `json:"period"`
	Threshold float64              `json:"threshold"`
	Width     int                  `json:"width"`
	Scored    int64                `json:"scored"`
	Ring      timeseries.RingState `json:"ring"`
}

// State snapshots the detector.
func (s *StreamDetector) State() StreamDetectorState {
	return StreamDetectorState{
		Period:    s.det.Period,
		Threshold: s.det.Threshold,
		Width:     s.det.Window,
		Scored:    s.scored,
		Ring:      s.ring.State(),
	}
}

// StreamDetectorFromState reconstructs a detector from a snapshot.
func StreamDetectorFromState(st StreamDetectorState) (*StreamDetector, error) {
	ring, err := timeseries.RingFromState(st.Ring)
	if err != nil {
		return nil, err
	}
	if st.Period < 2 {
		return nil, fmt.Errorf("anomaly: stream detector state has period %d", st.Period)
	}
	return &StreamDetector{
		det:    Detector{Period: st.Period, Threshold: st.Threshold, Window: st.Width},
		ring:   ring,
		scored: st.Scored,
	}, nil
}
