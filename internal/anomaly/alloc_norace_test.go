//go:build !race

package anomaly

// raceEnabled reports whether this test binary was built with -race.
const raceEnabled = false
