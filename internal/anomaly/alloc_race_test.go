//go:build race

package anomaly

// raceEnabled reports whether this test binary was built with -race; the
// race runtime instruments allocations, so AllocsPerRun assertions are
// skipped under it.
const raceEnabled = true
