package anomaly

import (
	"encoding/json"
	"testing"
)

func pushChunked(t *testing.T, s *StreamDetector, values []float64, chunk int) []int64 {
	t.Helper()
	var got []int64
	for lo := 0; lo < len(values); {
		hi := lo + chunk
		if hi > len(values) {
			hi = len(values)
		}
		idx, err := s.Push(values[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, idx...)
		lo = hi
	}
	tail, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return append(got, tail...)
}

func TestStreamDetectorFindsSpikesOnce(t *testing.T) {
	base := seasonalBase(2000, 48, 1)
	spiked, truth := InjectSpikes(base, 8, 12, 7)
	det := Detector{Period: 48, Threshold: 5}
	s, err := NewStreamDetector(det, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := pushChunked(t, s, spiked, 97)
	seen := map[int64]int{}
	for _, g := range got {
		seen[g]++
		if seen[g] > 1 {
			t.Fatalf("index %d emitted twice", g)
		}
	}
	detected := make([]int, len(got))
	for i, g := range got {
		detected[i] = int(g)
	}
	_, recall, f1 := Score(detected, truth, 2)
	if recall < 0.9 || f1 < 0.8 {
		t.Fatalf("recall=%.2f f1=%.2f on injected spikes (got %v, truth %v)", recall, f1, detected, f1)
	}
}

func TestStreamDetectorChunkingInvariant(t *testing.T) {
	// The emitted set must not depend on how the stream is chunked as long
	// as every detection stays inside the sliding window.
	base := seasonalBase(1500, 24, 5)
	spiked, _ := InjectSpikes(base, 6, 10, 3)
	det := Detector{Period: 24, Threshold: 5}
	var ref []int64
	for i, chunk := range []int{1500, 50, 7} {
		s, err := NewStreamDetector(det, 1500) // window covers the whole stream
		if err != nil {
			t.Fatal(err)
		}
		got := pushChunked(t, s, spiked, chunk)
		if i == 0 {
			ref = got
			continue
		}
		if len(got) != len(ref) {
			t.Fatalf("chunk=%d: %v vs %v", chunk, got, ref)
		}
		for j := range got {
			if got[j] != ref[j] {
				t.Fatalf("chunk=%d: %v vs %v", chunk, got, ref)
			}
		}
	}
	if len(ref) == 0 {
		t.Fatal("no detections to compare")
	}
}

func TestStreamDetectorStateRoundTrip(t *testing.T) {
	base := seasonalBase(1200, 24, 9)
	spiked, _ := InjectSpikes(base, 6, 10, 5)
	det := Detector{Period: 24, Threshold: 5}
	full, err := NewStreamDetector(det, 0)
	if err != nil {
		t.Fatal(err)
	}
	half, err := NewStreamDetector(det, 0)
	if err != nil {
		t.Fatal(err)
	}
	var fullOut, halfOut []int64
	feed := func(s *StreamDetector, values []float64, sink *[]int64) {
		for lo := 0; lo < len(values); lo += 60 {
			hi := lo + 60
			if hi > len(values) {
				hi = len(values)
			}
			idx, err := s.Push(values[lo:hi])
			if err != nil {
				t.Fatal(err)
			}
			*sink = append(*sink, idx...)
		}
	}
	feed(full, spiked, &fullOut)
	feed(half, spiked[:600], &halfOut)

	raw, err := json.Marshal(half.State())
	if err != nil {
		t.Fatal(err)
	}
	var st StreamDetectorState
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	restored, err := StreamDetectorFromState(st)
	if err != nil {
		t.Fatal(err)
	}
	feed(restored, spiked[600:], &halfOut)
	ft, err := full.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := restored.Finish()
	if err != nil {
		t.Fatal(err)
	}
	fullOut = append(fullOut, ft...)
	halfOut = append(halfOut, rt...)
	if len(fullOut) != len(halfOut) {
		t.Fatalf("restored run diverged: %v vs %v", halfOut, fullOut)
	}
	for i := range fullOut {
		if fullOut[i] != halfOut[i] {
			t.Fatalf("restored run diverged at %d: %v vs %v", i, halfOut, fullOut)
		}
	}
	if _, err := StreamDetectorFromState(StreamDetectorState{Period: 1, Ring: half.State().Ring}); err == nil {
		t.Fatal("bad period state accepted")
	}
	if _, err := NewStreamDetector(Detector{Period: 1}, 0); err == nil {
		t.Fatal("period 1 accepted")
	}
}

// TestScoreToleranceBoundaries pins the inclusive tolerance matching and the
// one-match-per-truth rule.
func TestScoreToleranceBoundaries(t *testing.T) {
	// Exactly at tolerance is a hit; one past is a miss.
	p, r, f1 := Score([]int{103}, []int{100}, 3)
	if p != 1 || r != 1 || f1 != 1 {
		t.Fatalf("distance==tolerance should match: p=%v r=%v f1=%v", p, r, f1)
	}
	p, r, _ = Score([]int{104}, []int{100}, 3)
	if p != 0 || r != 0 {
		t.Fatalf("distance>tolerance should miss: p=%v r=%v", p, r)
	}
	// Zero tolerance requires exact positions.
	p, r, _ = Score([]int{99, 100}, []int{100}, 0)
	if p != 0.5 || r != 1 {
		t.Fatalf("zero tolerance: p=%v r=%v", p, r)
	}
	// Two detections near one truth: only one can match.
	p, r, _ = Score([]int{99, 101}, []int{100}, 2)
	if p != 0.5 || r != 1 {
		t.Fatalf("double-count guard: p=%v r=%v", p, r)
	}
	// Symmetric: one detection cannot satisfy two truths.
	p, r, _ = Score([]int{100}, []int{99, 101}, 2)
	if p != 1 || r != 0.5 {
		t.Fatalf("one detection, two truths: p=%v r=%v", p, r)
	}
	// Empty edge cases.
	if p, r, f1 := Score(nil, nil, 5); p != 1 || r != 1 || f1 != 1 {
		t.Fatalf("empty/empty: p=%v r=%v f1=%v", p, r, f1)
	}
	p, r, f1 = Score([]int{5}, nil, 5)
	if p != 0 || r != 0 || f1 != 0 {
		t.Fatalf("detections without truth: p=%v r=%v f1=%v", p, r, f1)
	}
	p, r, f1 = Score(nil, []int{5}, 5)
	if p != 0 || r != 0 || f1 != 0 {
		t.Fatalf("truth without detections: p=%v r=%v f1=%v", p, r, f1)
	}
}

func TestSpikePlanMatchesInject(t *testing.T) {
	base := seasonalBase(900, 24, 13)
	injected, positions := InjectSpikes(base, 7, 9, 41)
	pos, deltas := SpikePlan(len(base), 7, 9, 41)
	if len(pos) != len(positions) {
		t.Fatalf("plan has %d positions, inject reported %d", len(pos), len(positions))
	}
	for i := range pos {
		if pos[i] != positions[i] {
			t.Fatalf("position %d: plan %d vs inject %d", i, pos[i], positions[i])
		}
		if got := injected[pos[i]] - base[pos[i]]; got != deltas[i] {
			t.Fatalf("delta at %d: plan %v vs applied %v", pos[i], deltas[i], got)
		}
	}
	for i := 1; i < len(pos); i++ {
		if pos[i] <= pos[i-1] {
			t.Fatalf("positions not increasing: %v", pos)
		}
	}
	if p, d := SpikePlan(0, 5, 1, 1); p != nil || d != nil {
		t.Fatal("empty series produced a plan")
	}
}
