package datasets

import (
	"testing"

	"lossyts/internal/features"
)

func extractSynthetic(t *testing.T, spec SyntheticSpec) features.Vector {
	t.Helper()
	d, err := Synthetic(spec)
	if err != nil {
		t.Fatal(err)
	}
	f, err := features.Extract(d.Target().Values, features.Options{Period: d.SeasonalPeriod})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSyntheticSeasonalStrengthControl(t *testing.T) {
	strong := DefaultSyntheticSpec()
	strong.SeasonalStrength = 0.9
	strong.TrendStrength = 0.05
	weak := DefaultSyntheticSpec()
	weak.SeasonalStrength = 0.05
	weak.TrendStrength = 0.05

	fs := extractSynthetic(t, strong)
	fw := extractSynthetic(t, weak)
	if fs["seas_strength"] <= fw["seas_strength"] {
		t.Errorf("seas_strength did not respond to the control: strong %.3f vs weak %.3f",
			fs["seas_strength"], fw["seas_strength"])
	}
	if fs["seas_strength"] < 0.6 {
		t.Errorf("strong setting produced seas_strength %.3f", fs["seas_strength"])
	}
}

func TestSyntheticLevelShiftControl(t *testing.T) {
	shifted := DefaultSyntheticSpec()
	shifted.LevelShifts = 4
	shifted.ShiftMagnitude = 6
	calm := DefaultSyntheticSpec()

	fsh := extractSynthetic(t, shifted)
	fc := extractSynthetic(t, calm)
	if fsh["max_level_shift"] <= fc["max_level_shift"] {
		t.Errorf("max_level_shift did not respond: %.3f vs %.3f",
			fsh["max_level_shift"], fc["max_level_shift"])
	}
	if fsh["max_kl_shift"] <= fc["max_kl_shift"] {
		t.Errorf("max_kl_shift did not respond: %.3f vs %.3f",
			fsh["max_kl_shift"], fc["max_kl_shift"])
	}
}

func TestSyntheticNoiseControl(t *testing.T) {
	noisy := DefaultSyntheticSpec()
	noisy.SeasonalStrength = 0.2
	noisy.NoiseLevel = 1
	quiet := DefaultSyntheticSpec()
	quiet.SeasonalStrength = 0.9
	quiet.TrendStrength = 0.05
	quiet.NoiseLevel = 0.05

	fn := extractSynthetic(t, noisy)
	fq := extractSynthetic(t, quiet)
	if fn["entropy"] <= fq["entropy"] {
		t.Errorf("spectral entropy did not respond: noisy %.3f vs quiet %.3f",
			fn["entropy"], fq["entropy"])
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a, err := Synthetic(DefaultSyntheticSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic(DefaultSyntheticSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !a.Target().Equal(b.Target()) {
		t.Fatal("same spec must generate identical data")
	}
}

func TestSyntheticErrors(t *testing.T) {
	spec := DefaultSyntheticSpec()
	spec.Length = 10
	if _, err := Synthetic(spec); err == nil {
		t.Error("short length should error")
	}
	spec = DefaultSyntheticSpec()
	spec.SeasonalStrength = 0.8
	spec.TrendStrength = 0.5
	if _, err := Synthetic(spec); err == nil {
		t.Error("strengths > 1 should error")
	}
	spec = DefaultSyntheticSpec()
	spec.SeasonalStrength = -0.1
	if _, err := Synthetic(spec); err == nil {
		t.Error("negative strength should error")
	}
}
