package datasets

import (
	"math"
	"testing"

	"lossyts/internal/timeseries"
)

// TestStreamTargetMatchesLoad is the tentpole contract of the streaming
// generator: for every registered paper dataset, collecting the streamed
// chunks must reproduce the batch-generated target column bit for bit — the
// same rng draws, the same rescaling coefficients, the same quantisation
// clip bounds.
func TestStreamTargetMatchesLoad(t *testing.T) {
	for _, name := range Names {
		for _, seed := range []int64{1, 7} {
			ds, err := Load(name, 0.01, seed)
			if err != nil {
				t.Fatal(err)
			}
			want := ds.Target()
			for _, chunk := range []int{256, 1000, 0} {
				ts, err := StreamTarget(name, 0.01, seed, chunk)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if ts.Len() != want.Len() || ts.Start() != want.Start || ts.Interval() != want.Interval {
					t.Fatalf("%s: stream metadata %d/%d/%d, want %d/%d/%d",
						name, ts.Len(), ts.Start(), ts.Interval(), want.Len(), want.Start, want.Interval)
				}
				got, err := timeseries.Collect(name, ts)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if got.Len() != want.Len() {
					t.Fatalf("%s seed=%d chunk=%d: streamed %d values, batch %d", name, seed, chunk, got.Len(), want.Len())
				}
				for i := range want.Values {
					if math.Float64bits(got.Values[i]) != math.Float64bits(want.Values[i]) {
						t.Fatalf("%s seed=%d chunk=%d: value %d streamed %v, batch %v",
							name, seed, chunk, i, got.Values[i], want.Values[i])
					}
				}
			}
		}
	}
}

// TestStreamTargetMetadata checks the accessors against the registry specs.
func TestStreamTargetMetadata(t *testing.T) {
	ts, err := StreamTarget("ElecDem", 0.01, 1, 128)
	if err != nil {
		t.Fatal(err)
	}
	sp, _ := SpecOf("ElecDem")
	if ts.Name() != "ElecDem" || ts.TargetName() != "DEMAND" {
		t.Fatalf("names %q/%q", ts.Name(), ts.TargetName())
	}
	if ts.Period() != sp.Period || ts.Interval() != sp.Interval {
		t.Fatalf("period/interval %d/%d", ts.Period(), ts.Interval())
	}
	if ts.Err() != nil {
		t.Fatal(ts.Err())
	}
}

// TestStreamTargetChunkGeometry checks that streamed chunks abut and respect
// the requested size, and that chunk buffers are reused (the documented
// aliasing contract).
func TestStreamTargetChunkGeometry(t *testing.T) {
	ts, err := StreamTarget("Weather", 0.01, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	prevEnd := ts.Start()
	total := 0
	var firstBuf []float64
	for {
		c, ok := ts.Next()
		if !ok {
			break
		}
		if c.Len() == 0 || c.Len() > 100 {
			t.Fatalf("chunk of %d values", c.Len())
		}
		if c.Start != prevEnd || c.Interval != ts.Interval() {
			t.Fatalf("chunk at %d, want %d", c.Start, prevEnd)
		}
		if firstBuf == nil {
			firstBuf = c.Values[:1]
		} else if total+c.Len() <= ts.Len() && c.Len() == 100 && &firstBuf[0] != &c.Values[0] {
			t.Fatal("full-size chunks should reuse the internal buffer")
		}
		prevEnd = c.End()
		total += c.Len()
	}
	if total != ts.Len() {
		t.Fatalf("streamed %d of %d values", total, ts.Len())
	}
}

// TestStreamTargetFallback exercises a registration without a StreamSpec
// (RegTestSine, registered in registry_test.go): StreamTarget must serve it
// from a batch Load behind the same interface.
func TestStreamTargetFallback(t *testing.T) {
	ts, err := StreamTarget("RegTestSine", 1, 3, 512)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Load("RegTestSine", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := timeseries.Collect("", ts)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want.Target()) {
		t.Fatal("fallback stream differs from batch Load")
	}
}

// TestStreamTargetErrors covers the argument validation.
func TestStreamTargetErrors(t *testing.T) {
	if _, err := StreamTarget("NoSuchDataset", 0.1, 1, 128); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := StreamTarget("ETTm1", 0, 1, 128); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := StreamTarget("ETTm1", 1.5, 1, 128); err == nil {
		t.Error("scale > 1 accepted")
	}
}

// TestCalibrationCached checks that the O(n) calibration pass runs once per
// (name, n, seed) — repeated streams share the cached coefficients.
func TestCalibrationCached(t *testing.T) {
	a, err := StreamTarget("ETTm1", 0.01, 42, 128)
	if err != nil {
		t.Fatal(err)
	}
	b, err := StreamTarget("ETTm1", 0.01, 42, 128)
	if err != nil {
		t.Fatal(err)
	}
	if a.cal != b.cal {
		t.Fatal("calibration not shared between identical streams")
	}
}
