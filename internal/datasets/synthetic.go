package datasets

import (
	"errors"
	"math"
	"math/rand"

	"lossyts/internal/timeseries"
)

// SyntheticSpec controls the characteristics of a generated series. It
// implements the validation methodology the paper proposes as future work
// (§7): "use synthetic data ... to adjust the critical time series
// characteristics identified in this paper, and test the resilience of
// specific forecasting models to changes in these characteristics".
type SyntheticSpec struct {
	Length int
	Period int
	Seed   int64
	// SeasonalStrength in [0, 1] sets the share of seasonal variance
	// (drives the seas_strength characteristic).
	SeasonalStrength float64
	// TrendStrength in [0, 1] sets the share of smooth trend variance.
	TrendStrength float64
	// NoiseLevel is the standard deviation of the irregular component
	// relative to the seasonal amplitude.
	NoiseLevel float64
	// LevelShifts injects this many abrupt level changes (drives the
	// max_kl_shift and max_level_shift characteristics the paper singles
	// out as TFE predictors).
	LevelShifts int
	// ShiftMagnitude is the size of each level change in amplitude units.
	ShiftMagnitude float64
}

// DefaultSyntheticSpec is a balanced series: clear seasonality, mild trend,
// moderate noise, no distribution shifts.
func DefaultSyntheticSpec() SyntheticSpec {
	return SyntheticSpec{
		Length:           4800,
		Period:           48,
		Seed:             1,
		SeasonalStrength: 0.7,
		TrendStrength:    0.2,
		NoiseLevel:       0.3,
		ShiftMagnitude:   3,
	}
}

// Synthetic generates a dataset from the spec. The three components are
// scaled so their variance shares follow SeasonalStrength and TrendStrength
// (the remainder is irregular noise), then level shifts are added.
func Synthetic(spec SyntheticSpec) (*Dataset, error) {
	if spec.Length < 4*spec.Period || spec.Period < 2 {
		return nil, errors.New("datasets: synthetic series needs at least four periods")
	}
	if spec.SeasonalStrength < 0 || spec.TrendStrength < 0 || spec.SeasonalStrength+spec.TrendStrength > 1 {
		return nil, errors.New("datasets: seasonal and trend strengths must be non-negative and sum to at most 1")
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	n := spec.Length

	seasonal := make([]float64, n)
	trend := make([]float64, n)
	noise := make([]float64, n)
	level := 0.0
	for i := 0; i < n; i++ {
		seasonal[i] = math.Sin(2*math.Pi*float64(i)/float64(spec.Period)) +
			0.3*math.Sin(4*math.Pi*float64(i)/float64(spec.Period))
		level = 0.999*level + 0.02*rng.NormFloat64()
		trend[i] = level
		noise[i] = spec.NoiseLevel * rng.NormFloat64()
	}
	normalise(seasonal)
	normalise(trend)

	values := make([]float64, n)
	ws := math.Sqrt(spec.SeasonalStrength)
	wt := math.Sqrt(spec.TrendStrength)
	wn := math.Sqrt(math.Max(0, 1-spec.SeasonalStrength-spec.TrendStrength))
	for i := 0; i < n; i++ {
		values[i] = 10 + 3*(ws*seasonal[i]+wt*trend[i]+wn*noise[i]/math.Max(spec.NoiseLevel, 1e-9))
	}
	// Abrupt level shifts at evenly spread (jittered) positions.
	if spec.LevelShifts > 0 {
		gap := n / (spec.LevelShifts + 1)
		offset := 0.0
		next := 0
		for k := 1; k <= spec.LevelShifts; k++ {
			pos := k*gap + rng.Intn(gap/2+1) - gap/4
			if pos <= next || pos >= n {
				continue
			}
			sign := 1.0
			if k%2 == 0 {
				sign = -1
			}
			for i := pos; i < n; i++ {
				values[i] += sign * spec.ShiftMagnitude
			}
			offset += sign * spec.ShiftMagnitude
			next = pos
		}
		_ = offset
	}
	s := timeseries.New("synthetic", baseStart, 600, values)
	frame, err := timeseries.NewFrame("Synthetic", baseStart, 600, 0, s)
	if err != nil {
		return nil, err
	}
	return &Dataset{Name: "Synthetic", Frame: frame, SeasonalPeriod: spec.Period, Interval: 600}, nil
}

// normalise scales a component to unit variance (no-op for constants).
func normalise(v []float64) {
	var mean float64
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	var ss float64
	for _, x := range v {
		ss += (x - mean) * (x - mean)
	}
	sd := math.Sqrt(ss / float64(len(v)))
	if sd == 0 {
		return
	}
	for i := range v {
		v[i] = (v[i] - mean) / sd
	}
}
