package datasets

import "testing"

// BenchmarkLoad and BenchmarkStreamTarget pair the two generation planes:
// Load materialises every frame column plus the post-processing copies,
// StreamTarget holds one chunk buffer and O(1) recurrence state (after the
// cached calibration pass). The streamed values are bit-identical
// (TestStreamTargetMatchesLoad).

func BenchmarkLoad(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Load("Wind", 0.05, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamTarget(b *testing.B) {
	// Warm the calibration cache so the loop measures the steady state.
	if _, err := StreamTarget("Wind", 0.05, 1, 512); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts, err := StreamTarget("Wind", 0.05, 1, 512)
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, ok := ts.Next(); !ok {
				break
			}
		}
	}
}
