package datasets

import (
	"math"
	"testing"

	"lossyts/internal/stats"
)

func TestLoadAllDatasets(t *testing.T) {
	for _, name := range Names {
		name := name
		t.Run(name, func(t *testing.T) {
			d, err := Load(name, 0.05, 1)
			if err != nil {
				t.Fatal(err)
			}
			if d.Name != name {
				t.Fatalf("name = %q", d.Name)
			}
			if d.Target() == nil || d.Target().Len() == 0 {
				t.Fatal("empty target")
			}
			if d.SeasonalPeriod < 2 {
				t.Fatal("missing seasonal period")
			}
			sp, ok := SpecOf(name)
			if !ok {
				t.Fatalf("no registered spec for %s", name)
			}
			if d.Interval != sp.Interval {
				t.Fatalf("interval = %d, want %d", d.Interval, sp.Interval)
			}
			if got := d.Target().Len(); got > sp.Length {
				t.Fatalf("scaled length %d exceeds full length %d", got, sp.Length)
			}
			for i, v := range d.Target().Values {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("non-finite value at %d", i)
				}
			}
		})
	}
}

func TestStatisticsMatchTable1(t *testing.T) {
	// Generated statistics should land near the paper's Table 1 values:
	// mean within 20%, quartiles inside [min, max], and values clipped to
	// the published range.
	for _, name := range Names {
		name := name
		t.Run(name, func(t *testing.T) {
			d := MustLoad(name, 0.1, 7)
			sp, _ := SpecOf(name)
			wantMean, wantMin, wantMax, wantQ3 := sp.Mean, sp.Min, sp.Max, sp.Q3
			desc, err := stats.Describe(d.Target().Values)
			if err != nil {
				t.Fatal(err)
			}
			if desc.Min < wantMin-1e-9 || desc.Max > wantMax+1e-9 {
				t.Errorf("range [%v, %v] outside Table 1 [%v, %v]", desc.Min, desc.Max, wantMin, wantMax)
			}
			tol := 0.25 * math.Abs(wantMean)
			if name == "Solar" {
				tol = 0.5 * wantMean // zero-inflation makes the mean noisier
			}
			if math.Abs(desc.Mean-wantMean) > tol {
				t.Errorf("mean %v, Table 1 says %v", desc.Mean, wantMean)
			}
			if wantQ3 > 0 && math.Abs(desc.Q3-wantQ3) > 0.4*wantQ3 {
				t.Errorf("Q3 %v, Table 1 says %v", desc.Q3, wantQ3)
			}
		})
	}
}

func TestRIQDOrdering(t *testing.T) {
	// The paper's key dataset contrast: Weather has a tiny rIQD (5%),
	// Solar a huge one (200%); the generators must preserve the ordering
	// Weather < ElecDem < ETTm2/ETTm1/Wind < Solar at least at the extremes.
	riqd := map[string]float64{}
	for _, name := range Names {
		d := MustLoad(name, 0.1, 3)
		desc, err := stats.Describe(d.Target().Values)
		if err != nil {
			t.Fatal(err)
		}
		riqd[name] = desc.RIQD
	}
	if riqd["Weather"] > 15 {
		t.Errorf("Weather rIQD = %.1f%%, want small (paper: 5%%)", riqd["Weather"])
	}
	if riqd["Solar"] < 100 {
		t.Errorf("Solar rIQD = %.1f%%, want large (paper: 200%%)", riqd["Solar"])
	}
	for _, name := range Names {
		if name == "Weather" {
			continue
		}
		if riqd["Weather"] >= riqd[name] {
			t.Errorf("Weather rIQD %.1f should be smallest, but %s has %.1f", riqd["Weather"], name, riqd[name])
		}
	}
}

func TestSolarZeroInflation(t *testing.T) {
	d := MustLoad("Solar", 0.1, 5)
	zeros := 0
	for _, v := range d.Target().Values {
		if v == 0 {
			zeros++
		}
		if v < 0 {
			t.Fatal("solar output cannot be negative")
		}
	}
	frac := float64(zeros) / float64(d.Target().Len())
	if frac < 0.25 || frac > 0.75 {
		t.Errorf("zero fraction = %.2f, want roughly half (nights)", frac)
	}
}

func TestWindHasNegatives(t *testing.T) {
	d := MustLoad("Wind", 0.02, 9)
	neg := 0
	for _, v := range d.Target().Values {
		if v < 0 {
			neg++
		}
	}
	if neg == 0 {
		t.Error("wind power should include negative idle-consumption values")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := MustLoad("ETTm1", 0.05, 42)
	b := MustLoad("ETTm1", 0.05, 42)
	if !a.Target().Equal(b.Target()) {
		t.Fatal("same seed must generate identical data")
	}
	c := MustLoad("ETTm1", 0.05, 43)
	if a.Target().Equal(c.Target()) {
		t.Fatal("different seeds should differ")
	}
}

func TestSeasonalityPresent(t *testing.T) {
	// The target autocorrelation at the seasonal lag should be clearly
	// positive for the seasonal datasets.
	for _, name := range []string{"ETTm1", "ETTm2", "Solar", "Weather", "ElecDem"} {
		d := MustLoad(name, 0.05, 11)
		v := d.Target().Values
		lag := d.SeasonalPeriod
		var mean float64
		for _, x := range v {
			mean += x
		}
		mean /= float64(len(v))
		var c0, cl float64
		for i := range v {
			c0 += (v[i] - mean) * (v[i] - mean)
			if i >= lag {
				cl += (v[i] - mean) * (v[i-lag] - mean)
			}
		}
		if cl/c0 < 0.25 {
			t.Errorf("%s: seasonal acf = %.3f, want clear seasonality", name, cl/c0)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load("Nope", 0.1, 1); err == nil {
		t.Error("unknown dataset should error")
	}
	if _, err := Load("ETTm1", 0, 1); err == nil {
		t.Error("zero scale should error")
	}
	if _, err := Load("ETTm1", 1.5, 1); err == nil {
		t.Error("scale > 1 should error")
	}
}

func TestMinimumLengthGuard(t *testing.T) {
	// Extremely small scales are clamped to keep enough seasonal cycles.
	d := MustLoad("ETTm1", 0.0001, 1)
	if d.Target().Len() < 6*d.SeasonalPeriod {
		t.Fatalf("length %d below the 6-period minimum", d.Target().Len())
	}
}

func TestFrameColumns(t *testing.T) {
	d := MustLoad("Wind", 0.01, 2)
	if len(d.Frame.Columns) != 3 {
		t.Fatalf("wind frame has %d columns, want 3", len(d.Frame.Columns))
	}
	if d.Frame.Column("WS") == nil {
		t.Fatal("missing wind speed column")
	}
	if d.Frame.TargetSeries().Name != "POWER" {
		t.Fatalf("target column = %q", d.Frame.TargetSeries().Name)
	}
}
