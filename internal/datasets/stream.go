package datasets

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"lossyts/internal/timeseries"
)

// StreamSpec describes how a registration's target column is generated
// chunk by chunk instead of as one up-front allocation. A registration that
// provides one can be streamed with StreamTarget, which reproduces the
// batch Load target bit for bit while holding O(chunk) state; without one,
// StreamTarget falls back to batch generation behind the same interface.
type StreamSpec struct {
	// Target is the name of the target column (Gen's first column).
	Target string
	// Step returns a closure producing the raw (pre-rescaling,
	// pre-quantisation) target value of each successive step. It must
	// consume rng draws exactly as Gen's generation loop does — including
	// the draws that feed secondary columns — so the streamed sequence
	// matches the batch one draw for draw.
	Step func(rng *rand.Rand, n int, sp Spec) func() float64
	// Match selects the rescaling Gen applies to the raw target:
	// "affine" (affineMatch) or "scale" (scaleMatch).
	Match string
	// Denom and LSB mirror the quantize call Gen applies to the target;
	// Nonzero selects quantizeNonzero (Solar's exact zeros).
	Denom, LSB float64
	Nonzero    bool
}

// countingSource wraps a rand.Source and counts Int63 draws. It deliberately
// does NOT implement rand.Source64: every rand.Rand method the generators
// use (NormFloat64, Intn, Float64) routes through Int63, so the count is the
// exact cursor position in the underlying sequence — which lets a second
// rand.Rand be fast-forwarded to the position where the batch generator
// starts drawing quantisation noise.
type countingSource struct {
	src   rand.Source
	count int64
}

func (c *countingSource) Int63() int64 {
	c.count++
	return c.src.Int63()
}

func (c *countingSource) Seed(seed int64) { c.src.Seed(seed) }

// matchKind is the rescaling applied between generation and quantisation.
type matchKind int

const (
	matchNone   matchKind = iota // scaleMatch with q3 <= 0: no rescale, no clip
	matchAffine                  // y = (x-m)*s + Mean, clipped to [Min, Max]
	matchScale                   // y = x*s, clipped to [Min, Max]
)

// calibration holds the whole-series statistics the batch post-processing
// derives: the rescaling coefficients, the quantisation clip bounds (min/max
// of the rescaled, pre-noise values), and the generator's rng draw count.
// Computing it costs one O(n) pass (cached per name/n/seed); the streaming
// passes it enables are O(chunk).
type calibration struct {
	kind     matchKind
	m, s     float64
	qlo, qhi float64
	genDraws int64
}

// rescale applies the calibrated match to one raw value, replicating the
// exact floating-point expressions of affineMatch / scaleMatch.
func (c *calibration) rescale(x float64, sp Spec) float64 {
	switch c.kind {
	case matchAffine:
		y := (x-c.m)*c.s + sp.Mean
		if y < sp.Min {
			y = sp.Min
		}
		if y > sp.Max {
			y = sp.Max
		}
		return y
	case matchScale:
		y := x * c.s
		if y < sp.Min {
			y = sp.Min
		}
		if y > sp.Max {
			y = sp.Max
		}
		return y
	default:
		return x
	}
}

type calKey struct {
	name string
	n    int
	seed int64
}

var calCache sync.Map // calKey -> *calibration

// calibrate runs the stepper once over a counting rng to recover the
// whole-series statistics the batch path computes in place.
func calibrate(r Registration, n int, seed int64) (*calibration, error) {
	key := calKey{name: r.Name, n: n, seed: seed}
	if cached, ok := calCache.Load(key); ok {
		return cached.(*calibration), nil
	}
	cs := &countingSource{src: rand.NewSource(seed*31 + int64(len(r.Name)))}
	rng := rand.New(cs)
	step := r.Stream.Step(rng, n, r.Spec)
	raw := make([]float64, n)
	for i := range raw {
		raw[i] = step()
	}
	cal := &calibration{genDraws: cs.count}
	sp := r.Spec
	switch r.Stream.Match {
	case "affine":
		sorted := append([]float64(nil), raw...)
		sort.Float64s(sorted)
		q1 := quantile(sorted, 0.25)
		q3 := quantile(sorted, 0.75)
		var m float64
		for _, x := range raw {
			m += x
		}
		m /= float64(len(raw))
		iqr := q3 - q1
		if iqr == 0 {
			iqr = 1
		}
		cal.kind, cal.m, cal.s = matchAffine, m, (sp.Q3-sp.Q1)/iqr
	case "scale":
		sorted := append([]float64(nil), raw...)
		sort.Float64s(sorted)
		q3 := quantile(sorted, 0.75)
		if q3 > 0 {
			cal.kind, cal.s = matchScale, sp.Q3/q3
		} else {
			cal.kind = matchNone
		}
	default:
		return nil, fmt.Errorf("datasets: %s has unknown stream match %q", r.Name, r.Stream.Match)
	}
	// The quantisation clip bounds are the min/max of the rescaled,
	// pre-noise values — apply the calibrated rescale to the raw pass.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range raw {
		y := cal.rescale(x, sp)
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	cal.qlo, cal.qhi = lo, hi
	actual, _ := calCache.LoadOrStore(key, cal)
	return actual.(*calibration), nil
}

// TargetStream streams a dataset's target column as chunks, implementing
// timeseries.Source. For registrations with a StreamSpec the values are
// generated on demand — the steady-state footprint is one chunk buffer plus
// the generator's O(1) recurrence state — and are bit-identical to
// Load(name, scale, seed).Target().Values. Registrations without a
// StreamSpec are served from a batch Load behind the same interface.
type TargetStream struct {
	name     string
	sp       Spec
	n        int
	pos      int
	buf      []float64
	fallback timeseries.Source // non-nil when serving from a batch Load

	spec     *StreamSpec
	cal      *calibration
	step     func() float64
	quantRng *rand.Rand
}

// StreamTarget returns a bounded-memory source over the named dataset's
// target column. scale and seed have Load's semantics; non-positive
// chunkSize falls back to timeseries.DefaultChunkSize. The streamed chunks
// concatenate to exactly the batch target series.
func StreamTarget(name string, scale float64, seed int64, chunkSize int) (*TargetStream, error) {
	registryMu.RLock()
	r, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, &UnknownDatasetError{Name: name}
	}
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("datasets: scale %v outside (0, 1]", scale)
	}
	if chunkSize <= 0 {
		chunkSize = timeseries.DefaultChunkSize
	}
	sp := r.Spec
	n := int(float64(sp.Length) * scale)
	if min := 6 * sp.Period; n < min {
		n = min
	}
	ts := &TargetStream{name: name, sp: sp, n: n, buf: make([]float64, chunkSize)}
	if r.Stream == nil {
		ds, err := Load(name, scale, seed)
		if err != nil {
			return nil, err
		}
		ts.fallback = ds.Target().Chunks(chunkSize)
		return ts, nil
	}
	cal, err := calibrate(r, n, seed)
	if err != nil {
		return nil, err
	}
	src := seed*31 + int64(len(name))
	genRng := rand.New(rand.NewSource(src))
	// The batch generator quantises the target immediately after the
	// generation loop, so the noise draws start genDraws into the sequence:
	// fast-forward a second rng to that cursor.
	quantSrc := rand.NewSource(src)
	for i := int64(0); i < cal.genDraws; i++ {
		quantSrc.Int63()
	}
	ts.spec = r.Stream
	ts.cal = cal
	ts.step = r.Stream.Step(genRng, n, sp)
	ts.quantRng = rand.New(quantSrc)
	return ts, nil
}

// Name returns the dataset name.
func (ts *TargetStream) Name() string { return ts.name }

// TargetName returns the target column's name (Load's first column).
func (ts *TargetStream) TargetName() string {
	if ts.spec != nil {
		return ts.spec.Target
	}
	return ts.name
}

// Len returns the total number of points the stream will produce.
func (ts *TargetStream) Len() int { return ts.n }

// Start returns the first timestamp (Load's fixed epoch).
func (ts *TargetStream) Start() int64 { return baseStart }

// Interval returns the sampling interval in seconds.
func (ts *TargetStream) Interval() int64 { return ts.sp.Interval }

// Period returns the dominant seasonal period in steps.
func (ts *TargetStream) Period() int { return ts.sp.Period }

// Next produces the next chunk. The chunk's Values alias an internal buffer
// reused on the following call, per the Source contract.
func (ts *TargetStream) Next() (timeseries.Chunk, bool) {
	if ts.fallback != nil {
		return ts.fallback.Next()
	}
	if ts.pos >= ts.n {
		return timeseries.Chunk{}, false
	}
	want := len(ts.buf)
	if left := ts.n - ts.pos; left < want {
		want = left
	}
	for i := 0; i < want; i++ {
		ts.buf[i] = ts.quantized(ts.cal.rescale(ts.step(), ts.sp))
	}
	c := timeseries.Chunk{
		Start:    baseStart + int64(ts.pos)*ts.sp.Interval,
		Interval: ts.sp.Interval,
		Values:   ts.buf[:want],
	}
	ts.pos += want
	return c, true
}

// quantized replicates the exact quantize / quantizeNonzero arithmetic for
// one value, drawing noise from the fast-forwarded rng.
func (ts *TargetStream) quantized(v float64) float64 {
	denom, lsb := ts.spec.Denom, ts.spec.LSB
	if ts.spec.Nonzero {
		if v == 0 {
			return 0
		}
		x := v + lsb/denom*ts.quantRng.NormFloat64()
		y := math.Round(x*denom) / denom
		if y <= 0 {
			y = 1 / denom
		}
		if y > ts.cal.qhi {
			y = ts.cal.qhi
		}
		return y
	}
	x := v + lsb/denom*ts.quantRng.NormFloat64()
	y := math.Round(x*denom) / denom
	if y < ts.cal.qlo {
		y = ts.cal.qlo
	}
	if y > ts.cal.qhi {
		y = ts.cal.qhi
	}
	return y
}

// Err reports a stream failure; generation itself cannot fail, so this only
// reflects a fallback source's error.
func (ts *TargetStream) Err() error {
	if ts.fallback != nil {
		return ts.fallback.Err()
	}
	return nil
}

// The per-dataset steppers below mirror their Gen loop bodies line for line,
// consuming rng draws in the identical order (secondary-column draws
// included, computed and discarded) so the underlying random sequence stays
// aligned with the batch generator.

func genETTStep(amp, sigma, ar float64) func(rng *rand.Rand, n int, sp Spec) func() float64 {
	return func(rng *rand.Rand, n int, sp Spec) func() float64 {
		day := float64(sp.Period)
		week := day * 7
		noise := 0.0
		level := 0.0
		i := 0
		return func() float64 {
			noise = ar*noise + sigma*rng.NormFloat64()
			level += 0.004 * rng.NormFloat64()
			level *= 0.9995
			daily := amp * math.Sin(2*math.Pi*float64(i)/day)
			weekly := 0.3 * amp * math.Sin(2*math.Pi*float64(i)/week)
			target := daily + weekly + noise + level*40
			_ = 0.8*daily + 2*rng.NormFloat64() // LOAD column draw
			i++
			return target
		}
	}
}

func genSolarStep(rng *rand.Rand, n int, sp Spec) func() float64 {
	day := float64(sp.Period)
	cloud := 0.7
	flicker := 0.0
	i := 0
	return func() float64 {
		phase := math.Mod(float64(i), day) / day
		cloud += 0.02 * rng.NormFloat64()
		if cloud < 0.05 {
			cloud = 0.05
		}
		if cloud > 1 {
			cloud = 1
		}
		flicker = 0.97*flicker + 0.01*rng.NormFloat64()
		var bell float64
		if phase > 0.25 && phase < 0.75 {
			bell = math.Sin(math.Pi * (phase - 0.25) / 0.5)
			bell *= bell
		}
		v := 30 * bell * cloud * (1 + flicker)
		if v < 0.2 {
			v = 0
		}
		// The PV1 column reuses the same draws; nothing extra to consume.
		i++
		return v
	}
}

func genWeatherStep(rng *rand.Rand, n int, sp Spec) func() float64 {
	day := float64(sp.Period)
	drift := 0.0
	noise := 0.0
	i := 0
	return func() float64 {
		drift += 0.02 * rng.NormFloat64()
		drift *= 0.9998
		noise = 0.97*noise + 0.7*rng.NormFloat64()
		target := 8*math.Sin(2*math.Pi*float64(i)/day) + drift*30 + noise
		_ = rng.NormFloat64() // T column draw
		i++
		return target
	}
}

func genElecDemStep(rng *rand.Rand, n int, sp Spec) func() float64 {
	day := float64(sp.Period)
	year := day * 365
	noise := 0.0
	i := 0
	return func() float64 {
		phase := math.Mod(float64(i), day) / day
		daily := 0.9*gauss(phase, 0.35, 0.09) + 1.1*gauss(phase, 0.75, 0.08)
		dow := int(float64(i)/day) % 7
		weekly := 1.0
		if dow >= 5 {
			weekly = 0.85
		}
		annual := 1 + 0.12*math.Sin(2*math.Pi*float64(i)/year)
		noise = 0.97*noise + 0.01*rng.NormFloat64()
		target := (0.55 + daily) * weekly * annual * (1 + noise)
		i++
		return target
	}
}

func genWindStep(rng *rand.Rand, n int, sp Spec) func() float64 {
	ws := 7.0
	gust := 0.0
	idle := -10.0
	rated := 2030.0
	i := 0
	return func() float64 {
		ws += 0.002*(7.5-ws) + 0.01*rng.NormFloat64()
		gust = 0.995*gust + 0.05*rng.NormFloat64()
		s := ws + gust + 1.2*math.Sin(2*math.Pi*float64(i)/float64(sp.Period))
		if s < 0 {
			s = 0
		}
		var p float64
		switch {
		case s < 3:
			idle += 0.9*(-10-idle) + 0.5*rng.NormFloat64()
			p = idle
		case s < 12:
			p = rated * math.Pow((s-3)/9, 3)
		default:
			rated += 0.5 * (2030*0.99 - rated)
			p = rated
		}
		_ = math.Min(16, s*1.3) + 0.2*rng.NormFloat64() // ROTOR column draw
		i++
		return p
	}
}
