package datasets

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"lossyts/internal/timeseries"
)

func init() {
	// A toy externally registered dataset: a pure sine with a short period.
	Register(Registration{
		Name: "RegTestSine",
		Spec: Spec{Length: 4000, Interval: 60, Period: 50, Mean: 0, Min: -1, Max: 1, Q1: -0.7, Q3: 0.7},
		Gen: func(rng *rand.Rand, n int, sp Spec) []*timeseries.Series {
			v := make([]float64, n)
			for i := range v {
				v[i] = math.Sin(2 * math.Pi * float64(i) / float64(sp.Period))
			}
			return []*timeseries.Series{timeseries.New("SINE", 0, 0, v)}
		},
	})
}

func TestRegisteredIncludesPaperDatasets(t *testing.T) {
	got := map[string]bool{}
	for _, name := range Registered() {
		got[name] = true
	}
	for _, name := range Names {
		if !got[name] {
			t.Errorf("paper dataset %s missing from Registered(): %v", name, Registered())
		}
	}
}

func TestLoadUnknownDatasetTypedError(t *testing.T) {
	_, err := Load("NoSuchDataset", 0.1, 1)
	if err == nil {
		t.Fatal("expected an error")
	}
	var unknown *UnknownDatasetError
	if !errors.As(err, &unknown) {
		t.Fatalf("want *UnknownDatasetError, got %T: %v", err, err)
	}
	if unknown.Name != "NoSuchDataset" {
		t.Fatalf("error names %q", unknown.Name)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	gen := func(rng *rand.Rand, n int, sp Spec) []*timeseries.Series { return nil }
	spec := Spec{Length: 100, Interval: 60, Period: 10}
	cases := map[string]Registration{
		"duplicate name": {Name: "ETTm1", Spec: spec, Gen: gen},
		"nil generator":  {Name: "FreshDataset", Spec: spec},
		"degenerate":     {Name: "FreshDataset", Gen: gen},
		"empty name":     {Spec: spec, Gen: gen},
	}
	for name, reg := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("Register(%+v) did not panic", reg)
				}
			}()
			Register(reg)
		})
	}
}

// TestRegisteredDatasetLoads proves a dataset registered outside
// datasets.go loads through the generic path with its spec respected.
func TestRegisteredDatasetLoads(t *testing.T) {
	d, err := Load("RegTestSine", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.SeasonalPeriod != 50 || d.Interval != 60 {
		t.Fatalf("metadata not taken from spec: %+v", d)
	}
	if d.Target().Len() != 4000 {
		t.Fatalf("length = %d, want 4000", d.Target().Len())
	}
	// Load is deterministic per (name, seed).
	d2, err := Load("RegTestSine", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range d.Target().Values {
		if d2.Target().Values[i] != v {
			t.Fatalf("non-deterministic generation at %d", i)
		}
	}
}
