// Package datasets provides seeded synthetic generators for the paper's
// six evaluation datasets (§3.1, Table 1): ETTm1, ETTm2, Solar, Weather,
// ElecDem, and Wind. The real datasets cannot be downloaded in an offline
// module, so each generator reproduces the published descriptive statistics
// (length, sampling interval, mean, min, max, quartiles, rIQD) and the
// qualitative structure that drives the paper's findings: daily/weekly
// seasonality, noise level, Solar's zero-inflated nights, Weather's tiny
// 5% rIQD, and Wind's high-variance regime switching (DESIGN.md
// substitution table).
package datasets

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"lossyts/internal/timeseries"
)

// Dataset bundles a generated frame with the metadata the evaluation needs.
type Dataset struct {
	Name string
	// Frame holds the generated columns; the forecasting target is
	// Frame.TargetSeries().
	Frame *timeseries.Frame
	// SeasonalPeriod is the dominant cycle length in steps (e.g. 96 for
	// 15-minute data with daily seasonality).
	SeasonalPeriod int
	// Interval is the sampling interval in seconds.
	Interval int64
}

// Target returns the forecasting target column.
func (d *Dataset) Target() *timeseries.Series { return d.Frame.TargetSeries() }

// Names lists the datasets in the paper's order.
var Names = []string{"ETTm1", "ETTm2", "Solar", "Weather", "ElecDem", "Wind"}

// Spec captures the Table 1 statistics a generator aims for.
type Spec struct {
	// Length is the full (scale 1.0) number of data points; Interval the
	// sampling interval in seconds; Period the dominant seasonal period in
	// steps.
	Length   int
	Interval int64
	Period   int
	// Mean, Min, Max, Q1, and Q3 are the descriptive statistics the
	// generator targets.
	Mean     float64
	Min, Max float64
	Q1, Q3   float64
}

// Registration declares a dataset generator to the package registry. The
// paper's six datasets self-register below; external packages register
// the same way and their datasets immediately work everywhere a dataset
// name is accepted — Load, the evaluation grid, and the lossyts API —
// without touching any dispatch site.
type Registration struct {
	// Name is the registry key, e.g. "ETTm1".
	Name string
	// Spec holds the statistics the generator targets; Spec.Length scaled
	// by Load's scale argument decides how many points Gen produces.
	Spec Spec
	// Gen produces the frame columns; the first column is the forecasting
	// target. rng is seeded deterministically from (name, seed).
	Gen func(rng *rand.Rand, n int, sp Spec) []*timeseries.Series
	// Stream optionally describes how to produce the target column chunk by
	// chunk with bounded memory (see StreamTarget). When nil, StreamTarget
	// falls back to batch generation behind the same interface.
	Stream *StreamSpec
}

// UnknownDatasetError is returned when a dataset name has no registration.
type UnknownDatasetError struct {
	Name string
}

func (e *UnknownDatasetError) Error() string {
	return fmt.Sprintf("datasets: unknown dataset %q (registered: %v)", e.Name, Registered())
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Registration{}
)

// Register adds a dataset generator to the registry. It panics on a
// duplicate name, a nil generator, or a degenerate spec — registration
// happens in init functions, where a loud failure at process start beats a
// broken grid later.
func Register(r Registration) {
	if r.Name == "" {
		panic("datasets: Register with empty dataset name")
	}
	if r.Gen == nil {
		panic(fmt.Sprintf("datasets: Register(%s) needs a generator", r.Name))
	}
	if r.Spec.Length <= 0 || r.Spec.Period <= 0 || r.Spec.Interval <= 0 {
		panic(fmt.Sprintf("datasets: Register(%s) with degenerate spec %+v", r.Name, r.Spec))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[r.Name]; dup {
		panic(fmt.Sprintf("datasets: dataset %q registered twice", r.Name))
	}
	registry[r.Name] = r
}

// Registered lists every registered dataset name in sorted order. The
// paper's evaluation order is the fixed Names slice.
func Registered() []string {
	registryMu.RLock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	registryMu.RUnlock()
	sort.Strings(out)
	return out
}

func init() {
	for _, r := range []Registration{
		{Name: "ETTm1",
			Spec: Spec{Length: 69680, Interval: 900, Period: 96, Mean: 13.32, Min: -4, Max: 46, Q1: 7, Q3: 18},
			Gen: func(rng *rand.Rand, n int, sp Spec) []*timeseries.Series {
				return genETT(rng, n, sp, 6, 0.12, 0.99)
			},
			Stream: &StreamSpec{Target: "OT", Step: genETTStep(6, 0.12, 0.99), Match: "affine", Denom: 128, LSB: 2}},
		{Name: "ETTm2",
			Spec: Spec{Length: 69680, Interval: 900, Period: 96, Mean: 26.60, Min: -3, Max: 58, Q1: 16, Q3: 36},
			Gen: func(rng *rand.Rand, n int, sp Spec) []*timeseries.Series {
				return genETT(rng, n, sp, 12, 0.08, 0.995)
			},
			Stream: &StreamSpec{Target: "OT", Step: genETTStep(12, 0.08, 0.995), Match: "affine", Denom: 128, LSB: 2}},
		{Name: "Solar",
			Spec:   Spec{Length: 52560, Interval: 600, Period: 144, Mean: 6.35, Min: 0, Max: 34, Q1: 0, Q3: 12},
			Gen:    genSolar,
			Stream: &StreamSpec{Target: "PV0", Step: genSolarStep, Match: "scale", Denom: 128, LSB: 2, Nonzero: true}},
		{Name: "Weather",
			Spec:   Spec{Length: 52704, Interval: 600, Period: 144, Mean: 427.66, Min: 305, Max: 524, Q1: 415, Q3: 437},
			Gen:    genWeather,
			Stream: &StreamSpec{Target: "CO2", Step: genWeatherStep, Match: "affine", Denom: 64, LSB: 2}},
		{Name: "ElecDem",
			Spec:   Spec{Length: 230736, Interval: 1800, Period: 48, Mean: 6740, Min: 3498, Max: 12865, Q1: 5751, Q3: 7658},
			Gen:    genElecDem,
			Stream: &StreamSpec{Target: "DEMAND", Step: genElecDemStep, Match: "affine", Denom: 1, LSB: 3}},
		{Name: "Wind",
			Spec:   Spec{Length: 432000, Interval: 2, Period: 720, Mean: 363.69, Min: -68, Max: 2030, Q1: 108, Q3: 550},
			Gen:    genWind,
			Stream: &StreamSpec{Target: "POWER", Step: genWindStep, Match: "affine", Denom: 8, LSB: 2}},
	} {
		Register(r)
	}
}

// baseStart is an arbitrary fixed epoch (2020-01-01 00:00 UTC) so generated
// timestamps fit the 32-bit header field the paper's codec uses.
const baseStart = 1577836800

// Load generates the named dataset via its registered generator. scale in
// (0, 1] shrinks the length for fast tests and benches (1.0 = the paper's
// full length); seed makes the generation reproducible. Unknown names
// yield an *UnknownDatasetError.
func Load(name string, scale float64, seed int64) (*Dataset, error) {
	registryMu.RLock()
	r, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, &UnknownDatasetError{Name: name}
	}
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("datasets: scale %v outside (0, 1]", scale)
	}
	sp := r.Spec
	n := int(float64(sp.Length) * scale)
	if min := 6 * sp.Period; n < min {
		n = min // keep enough cycles for decomposition-based features
	}
	rng := rand.New(rand.NewSource(seed*31 + int64(len(name))))
	cols := r.Gen(rng, n, sp)
	frame, err := timeseries.NewFrame(name, baseStart, sp.Interval, 0, cols...)
	if err != nil {
		return nil, err
	}
	return &Dataset{Name: name, Frame: frame, SeasonalPeriod: sp.Period, Interval: sp.Interval}, nil
}

// MustLoad is Load that panics on error, for tests and examples.
func MustLoad(name string, scale float64, seed int64) *Dataset {
	d, err := Load(name, scale, seed)
	if err != nil {
		panic(err)
	}
	return d
}

// SpecOf returns the registered spec for the named dataset — the paper's
// Table 1 statistics for the built-ins — and whether the name is known.
func SpecOf(name string) (Spec, bool) {
	registryMu.RLock()
	r, ok := registry[name]
	registryMu.RUnlock()
	return r.Spec, ok
}

// genETT produces an electrical-transformer-like oil temperature: daily and
// weekly seasonality, a slowly wandering level, and AR(1) noise. amp sets
// the daily amplitude, sigma the innovation scale and ar the AR coefficient
// (ETTm2 is smoother than ETTm1).
func genETT(rng *rand.Rand, n int, sp Spec, amp, sigma, ar float64) []*timeseries.Series {
	day := float64(sp.Period)
	week := day * 7
	target := make([]float64, n)
	load := make([]float64, n)
	noise := 0.0
	level := 0.0
	for i := 0; i < n; i++ {
		noise = ar*noise + sigma*rng.NormFloat64()
		level += 0.004 * rng.NormFloat64()
		level *= 0.9995 // mean-reverting wander
		daily := amp * math.Sin(2*math.Pi*float64(i)/day)
		weekly := 0.3 * amp * math.Sin(2*math.Pi*float64(i)/week)
		target[i] = daily + weekly + noise + level*40
		load[i] = 0.8*daily + 2*rng.NormFloat64()
	}
	affineMatch(target, sp)
	quantize(rng, target, 128, 2) // ADC precision: 1/128 units, ~2 LSB noise
	quantize(rng, load, 128, 2)
	return []*timeseries.Series{
		timeseries.New("OT", 0, 0, target),
		timeseries.New("LOAD", 0, 0, load),
	}
}

// genSolar produces a zero-inflated PV power output: a daily bell curve
// gated to daytime, modulated by slowly varying cloud cover.
func genSolar(rng *rand.Rand, n int, sp Spec) []*timeseries.Series {
	day := float64(sp.Period)
	target := make([]float64, n)
	second := make([]float64, n)
	cloud := 0.7
	flicker := 0.0
	for i := 0; i < n; i++ {
		phase := math.Mod(float64(i), day) / day // 0..1 across a day
		cloud += 0.02 * rng.NormFloat64()
		if cloud < 0.05 {
			cloud = 0.05
		}
		if cloud > 1 {
			cloud = 1
		}
		flicker = 0.97*flicker + 0.01*rng.NormFloat64()
		// Daylight between 0.25 and 0.75 of the day.
		var bell float64
		if phase > 0.25 && phase < 0.75 {
			bell = math.Sin(math.Pi * (phase - 0.25) / 0.5)
			bell *= bell
		}
		v := 30 * bell * cloud * (1 + flicker)
		if v < 0.2 {
			v = 0 // inverter cut-in: nights and deep clouds are exactly zero
		}
		target[i] = v
		second[i] = 30 * bell * math.Min(1, cloud+0.1) * (1 + flicker)
	}
	scaleMatch(target, sp)
	quantizeNonzero(rng, target, 128, 2)
	quantizeNonzero(rng, second, 128, 2)
	return []*timeseries.Series{
		timeseries.New("PV0", 0, 0, target),
		timeseries.New("PV1", 0, 0, second),
	}
}

// genWeather produces a CO2-like concentration: large stable level, small
// daily oscillation, slow drift — the 5% rIQD regime where lossy
// compression achieves extreme ratios.
func genWeather(rng *rand.Rand, n int, sp Spec) []*timeseries.Series {
	day := float64(sp.Period)
	target := make([]float64, n)
	temp := make([]float64, n)
	drift := 0.0
	noise := 0.0
	for i := 0; i < n; i++ {
		drift += 0.02 * rng.NormFloat64()
		drift *= 0.9998
		noise = 0.97*noise + 0.7*rng.NormFloat64()
		target[i] = 8*math.Sin(2*math.Pi*float64(i)/day) + drift*30 + noise
		temp[i] = 10 + 6*math.Sin(2*math.Pi*float64(i)/day-1) + rng.NormFloat64()
	}
	affineMatch(target, sp)
	quantize(rng, target, 64, 2)
	quantize(rng, temp, 64, 2)
	return []*timeseries.Series{
		timeseries.New("CO2", 0, 0, target),
		timeseries.New("T", 0, 0, temp),
	}
}

// genElecDem produces half-hourly electricity demand: a double-peaked daily
// profile, weekday/weekend contrast, an annual cycle, and noise.
func genElecDem(rng *rand.Rand, n int, sp Spec) []*timeseries.Series {
	day := float64(sp.Period)
	year := day * 365
	target := make([]float64, n)
	noise := 0.0
	for i := 0; i < n; i++ {
		phase := math.Mod(float64(i), day) / day
		// Morning and evening peaks.
		daily := 0.9*gauss(phase, 0.35, 0.09) + 1.1*gauss(phase, 0.75, 0.08)
		dow := int(float64(i)/day) % 7
		weekly := 1.0
		if dow >= 5 {
			weekly = 0.85 // weekends
		}
		annual := 1 + 0.12*math.Sin(2*math.Pi*float64(i)/year)
		noise = 0.97*noise + 0.01*rng.NormFloat64()
		target[i] = (0.55 + daily) * weekly * annual * (1 + noise)
	}
	affineMatch(target, sp)
	quantize(rng, target, 1, 3) // demand metered in whole units
	return []*timeseries.Series{timeseries.New("DEMAND", 0, 0, target)}
}

func gauss(x, mu, sigma float64) float64 {
	d := (x - mu) / sigma
	return math.Exp(-0.5 * d * d)
}

// genWind produces 2-second wind turbine active power: an
// Ornstein-Uhlenbeck wind speed pushed through a cubic power curve with
// rated saturation, plus idle consumption making small negative values.
func genWind(rng *rand.Rand, n int, sp Spec) []*timeseries.Series {
	target := make([]float64, n)
	rotor := make([]float64, n)
	windSpeed := make([]float64, n)
	ws := 7.0
	gust := 0.0
	idle := -10.0
	rated := 2030.0
	for i := 0; i < n; i++ {
		// Slow mean-reverting wind with a mild periodic component; at a
		// 2-second sampling interval consecutive speeds are very close.
		ws += 0.002*(7.5-ws) + 0.01*rng.NormFloat64()
		gust = 0.995*gust + 0.05*rng.NormFloat64()
		s := ws + gust + 1.2*math.Sin(2*math.Pi*float64(i)/float64(sp.Period))
		if s < 0 {
			s = 0
		}
		windSpeed[i] = s
		var p float64
		switch {
		case s < 3: // below cut-in: idle consumption
			idle += 0.9*(-10-idle) + 0.5*rng.NormFloat64()
			p = idle
		case s < 12:
			p = rated * math.Pow((s-3)/9, 3)
		default:
			rated += 0.5 * (2030*0.99 - rated)
			p = rated
		}
		target[i] = p
		rotor[i] = math.Min(16, s*1.3) + 0.2*rng.NormFloat64()
	}
	affineMatch(target, sp)
	quantize(rng, target, 8, 2) // power metered in 1/8 kW ADC steps
	quantize(rng, rotor, 128, 2)
	quantize(rng, windSpeed, 128, 2)
	return []*timeseries.Series{
		timeseries.New("POWER", 0, 0, target),
		timeseries.New("ROTOR", 0, 0, rotor),
		timeseries.New("WS", 0, 0, windSpeed),
	}
}

// affineMatch rescales values so the mean and interquartile range match the
// spec, then clips to [min, max].
func affineMatch(v []float64, sp Spec) {
	sorted := append([]float64(nil), v...)
	sort.Float64s(sorted)
	q1 := quantile(sorted, 0.25)
	q3 := quantile(sorted, 0.75)
	var m float64
	for _, x := range v {
		m += x
	}
	m /= float64(len(v))
	iqr := q3 - q1
	if iqr == 0 {
		iqr = 1
	}
	s := (sp.Q3 - sp.Q1) / iqr
	for i, x := range v {
		y := (x-m)*s + sp.Mean
		if y < sp.Min {
			y = sp.Min
		}
		if y > sp.Max {
			y = sp.Max
		}
		v[i] = y
	}
}

// scaleMatch rescales by a pure factor (keeping zeros at zero) so the upper
// quartile matches the spec, then clips. Used for the zero-inflated Solar.
func scaleMatch(v []float64, sp Spec) {
	sorted := append([]float64(nil), v...)
	sort.Float64s(sorted)
	q3 := quantile(sorted, 0.75)
	if q3 <= 0 {
		return
	}
	s := sp.Q3 / q3
	for i, x := range v {
		y := x * s
		if y < sp.Min {
			y = sp.Min
		}
		if y > sp.Max {
			y = sp.Max
		}
		v[i] = y
	}
}

// quantize rounds values to 1/denom units (denom a power of two, emulating
// an ADC's binary step size) after adding lsb units of white measurement
// noise. The noise keeps the low digits realistic — without it gzip
// compresses the raw baseline unrealistically well — while binary steps
// keep XOR-based codecs (Gorilla) effective, as on real sensor exports.
func quantize(rng *rand.Rand, v []float64, denom, lsb float64) {
	lo, hi := v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	for i, x := range v {
		x += lsb / denom * rng.NormFloat64()
		y := math.Round(x*denom) / denom
		if y < lo {
			y = lo
		}
		if y > hi {
			y = hi
		}
		v[i] = y
	}
}

// quantizeNonzero is quantize but leaves exact zeros untouched (Solar's
// nights report exactly zero).
func quantizeNonzero(rng *rand.Rand, v []float64, denom, lsb float64) {
	hi := v[0]
	for _, x := range v {
		if x > hi {
			hi = x
		}
	}
	for i, x := range v {
		if x == 0 {
			continue
		}
		x += lsb / denom * rng.NormFloat64()
		y := math.Round(x*denom) / denom
		if y <= 0 {
			y = 1 / denom
		}
		if y > hi {
			y = hi
		}
		v[i] = y
	}
}

func quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	pos := q * float64(n-1)
	lo := int(pos)
	if lo+1 >= n {
		return sorted[n-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
