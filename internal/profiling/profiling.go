// Package profiling wires the -cpuprofile/-memprofile flags of the
// command-line tools to runtime/pprof. Both profiles target the kernel
// work this repo optimises: CPU profiles attribute time to the blocked
// matmul and fused-op kernels, and heap profiles verify the arena keeps
// steady-state allocation flat across training steps.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty) and arranges for a
// heap profile to be written to memPath (when non-empty) at stop time. The
// returned stop function is safe to call exactly once and must run before
// the process exits — including error paths that call os.Exit, which skips
// deferred calls.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: start CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: close CPU profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // flatten transient garbage so the heap profile shows live state
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
