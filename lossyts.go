package lossyts

import (
	"bytes"
	"context"

	"lossyts/internal/anomaly"
	"lossyts/internal/compress"
	"lossyts/internal/core"
	"lossyts/internal/core/cellstore"
	"lossyts/internal/datasets"
	"lossyts/internal/features"
	"lossyts/internal/forecast"
	"lossyts/internal/impact"
	"lossyts/internal/serve"
	"lossyts/internal/stats"
	"lossyts/internal/timeseries"
)

// Re-exported data model types.
type (
	// Series is a regular time series (constant sampling interval).
	Series = timeseries.Series
	// Frame is a multivariate time series with a forecasting target column.
	Frame = timeseries.Frame
	// StandardScaler standardises model inputs as the paper does (§3.4).
	StandardScaler = timeseries.StandardScaler
	// WindowSet is a batch of (input, target) forecasting windows.
	WindowSet = timeseries.WindowSet
	// Chunk is a bounded run of consecutive points — the unit of the
	// streaming data plane. Its Values slice is only valid until the next
	// Source.Next call; copy if you need to keep it.
	Chunk = timeseries.Chunk
	// SeriesSource yields a series chunk by chunk. Implement it to feed
	// third-party data (files, sockets, sensors) into the streaming
	// encoders without materialising the series; Series.Chunks adapts an
	// in-memory series.
	SeriesSource = timeseries.Source
)

// DefaultChunkSize is the chunk length used when a caller passes a
// non-positive chunk size to the streaming APIs.
const DefaultChunkSize = timeseries.DefaultChunkSize

// NewSeries constructs a regular time series.
func NewSeries(name string, start, interval int64, values []float64) *Series {
	return timeseries.New(name, start, interval, values)
}

// CollectSeries drains a chunk source into an in-memory series — the
// bridge back from the streaming data plane to the batch APIs.
func CollectSeries(name string, src SeriesSource) (*Series, error) {
	return timeseries.Collect(name, src)
}

// MakeWindows slices values into overlapping (input, target) forecasting
// windows.
func MakeWindows(values []float64, inputLen, horizon, stride int) (*WindowSet, error) {
	return timeseries.MakeWindows(values, inputLen, horizon, stride)
}

// MakePairedWindows builds windows whose inputs come from one series (e.g.
// decompressed data) and whose targets come from another (the raw data) —
// the pairing of the paper's Algorithm 1.
func MakePairedWindows(inputs, targets []float64, inputLen, horizon, stride int) (*WindowSet, error) {
	return timeseries.MakePairedWindows(inputs, targets, inputLen, horizon, stride)
}

// Compression API.
type (
	// Method identifies a compression algorithm.
	Method = compress.Method
	// Compressed is a compressed series; its Payload length is the .gz size
	// used in all compression ratios.
	Compressed = compress.Compressed
	// Compressor is the pointwise error-bounded compressor interface.
	Compressor = compress.Compressor
)

// The compression methods evaluated in the paper.
const (
	PMC     = compress.MethodPMC
	Swing   = compress.MethodSwing
	SZ      = compress.MethodSZ
	Gorilla = compress.MethodGorilla
)

// SeasonalPMC is the forecasting-aware compressor built for the paper's §5
// research direction: it stores the seasonal profile exactly and applies
// PMC to the residuals, so seasonality survives any error bound. Construct
// it with the series' seasonal period.
type SeasonalPMC = compress.SeasonalPMC

// ErrorBounds is the paper's 13 pointwise relative error bounds (§3.2).
var ErrorBounds = compress.ErrorBounds

// Compress encodes s with the given method so that every decompressed
// value v̂ satisfies |v − v̂| ≤ epsilon·|v| (lossless methods ignore epsilon).
func Compress(m Method, s *Series, epsilon float64) (*Compressed, error) {
	c, err := compress.New(m)
	if err != nil {
		return nil, err
	}
	return c.Compress(s, epsilon)
}

// Ratio returns the compression ratio raw/compressed, both as .gz sizes
// (paper Eq. 3).
func Ratio(s *Series, c *Compressed) (float64, error) { return compress.Ratio(s, c) }

// RawGzipSize returns the gzipped size of the raw CSV encoding of s.
func RawGzipSize(s *Series) (int, error) { return compress.RawGzipSize(s) }

// FrameResult aggregates per-column compression of a multivariate frame.
type FrameResult = compress.FrameResult

// CompressFrame compresses every column of a frame with one method/bound.
func CompressFrame(m Method, f *Frame, epsilon float64) (*FrameResult, error) {
	return compress.CompressFrame(m, f, epsilon)
}

// DecompressFrame reconstructs a frame compressed with CompressFrame.
func DecompressFrame(r *FrameResult, template *Frame) (*Frame, error) {
	return compress.DecompressFrame(r, template)
}

// Streaming data plane: encode and decode chunk by chunk with bounded
// memory. Streamed payloads are byte-identical to batch compression —
// batch Compress drives the same incremental kernels — so ratios, error
// bounds, and decoded values cannot differ between the two planes.
type (
	// StreamEncoder compresses a series incrementally (Push or PushChunk),
	// producing byte-identical output to batch compression — the paper's
	// edge scenario.
	StreamEncoder = compress.StreamEncoder
	// StreamDecoder reconstructs a compressed series chunk by chunk; it is
	// a SeriesSource, so the decoded stream can feed any chunk consumer.
	StreamDecoder = compress.StreamDecoder
)

// NewStreamEncoder returns a streaming encoder for the series' metadata.
// PMC, Swing, SZ, and Gorilla stream through true incremental kernels;
// other registered methods buffer internally and fall back to batch
// encoding at Close (same bytes, batch memory).
func NewStreamEncoder(m Method, s *Series, epsilon float64) (*StreamEncoder, error) {
	return compress.NewStreamEncoder(m, s, epsilon)
}

// NewStreamEncoderAt is NewStreamEncoder for callers that know the start
// timestamp and sampling interval but have no materialised Series — the
// usual case at the edge.
func NewStreamEncoderAt(m Method, start, interval int64, epsilon float64) (*StreamEncoder, error) {
	return compress.NewStreamEncoderAt(m, start, interval, epsilon)
}

// NewBufferedStreamEncoder wraps any Compressor (e.g. an externally
// registered one with no incremental kernel) in the StreamEncoder
// interface by buffering points and batch-compressing at Close.
func NewBufferedStreamEncoder(c Compressor, start, interval int64, epsilon float64) (*StreamEncoder, error) {
	return compress.NewBufferedStreamEncoder(c, start, interval, epsilon)
}

// NewStreamDecoder returns a chunked decoder over a compressed payload
// (any registered method). chunkSize ≤ 0 uses DefaultChunkSize.
func NewStreamDecoder(c *Compressed, chunkSize int) (*StreamDecoder, error) {
	return compress.NewStreamDecoder(c, chunkSize)
}

// CompressorRegistration declares an externally implemented compression
// method: its name, payload wire code (built-ins use 1–5; external codes
// should start at 64), constructor, and payload-body decoder.
type CompressorRegistration = compress.Registration

// UnknownMethodError reports a compression method no registration matches.
type UnknownMethodError = compress.UnknownMethodError

// RegisterCompressor adds a compression method to the global registry, so
// Compress, the evaluation grid (EvalOptions.Methods), and payload decoding
// accept it like a built-in. It panics if the name or wire code is already
// taken. Call it from an init function.
func RegisterCompressor(r CompressorRegistration) { compress.Register(r) }

// RegisteredMethods lists every registered compression method, sorted.
func RegisteredMethods() []Method { return compress.Registered() }

// EncodePayloadHeader writes the standard payload header for an external
// compressor's Compress implementation; the method must be registered.
func EncodePayloadHeader(w *bytes.Buffer, m Method, s *Series) error {
	return compress.EncodeHeader(w, m, s)
}

// FinishPayload gzips an encoded payload into a Compressed result, as every
// built-in compressor does.
func FinishPayload(m Method, epsilon float64, s *Series, payload []byte, segments int) (*Compressed, error) {
	return compress.Finish(m, epsilon, s, payload, segments)
}

// Forecasting API.
type (
	// Model is a trained forecaster (Fit on scaled series, Predict windows).
	Model = forecast.Model
	// ForecastConfig carries window sizes and training hyperparameters.
	ForecastConfig = forecast.Config
)

// ModelNames lists the paper's seven forecasting models.
var ModelNames = forecast.ModelNames

// NewModel returns a fresh model by name ("Arima", "GBoost", "DLinear",
// "GRU", "Informer", "NBeats", "Transformer").
func NewModel(name string, cfg ForecastConfig) (Model, error) { return forecast.New(name, cfg) }

// DefaultForecastConfig mirrors the paper's hyperparameters at laptop scale.
func DefaultForecastConfig() ForecastConfig { return forecast.DefaultConfig() }

// ModelRegistration declares an externally implemented forecasting model:
// its name, constructor, and whether it trains like a deep model (deep
// models get EvalOptions.DeepSeeds repetitions instead of ShallowSeeds).
type ModelRegistration = forecast.Registration

// UnknownModelError reports a model name no registration matches.
type UnknownModelError = forecast.UnknownModelError

// RegisterModel adds a forecasting model to the global registry, so
// NewModel and the evaluation grid (EvalOptions.Models) accept it like a
// built-in. It panics on a duplicate name. Call it from an init function.
func RegisterModel(r ModelRegistration) { forecast.Register(r) }

// RegisteredModels lists every registered model name, sorted.
func RegisteredModels() []string { return forecast.Registered() }

// SearchSpace defines the hyperparameter grid of the paper's §3.4 search.
type SearchSpace = forecast.SearchSpace

// SearchHyperparameters runs the paper's validation-subset grid search and
// returns the best configuration plus the full evaluation trace.
func SearchHyperparameters(model string, base ForecastConfig, space SearchSpace, train, val []float64) (ForecastConfig, []forecast.SearchResult, error) {
	return forecast.SearchHyperparameters(model, base, space, train, val)
}

// Datasets API.

// Dataset is a generated evaluation dataset.
type Dataset = datasets.Dataset

// DatasetNames lists the paper's six datasets.
var DatasetNames = datasets.Names

// LoadDataset generates a synthetic dataset matching the paper's Table 1
// statistics; scale in (0, 1] shrinks the length (1 = paper scale).
func LoadDataset(name string, scale float64, seed int64) (*Dataset, error) {
	return datasets.Load(name, scale, seed)
}

// MustLoadDataset is LoadDataset that panics on error.
func MustLoadDataset(name string, scale float64, seed int64) *Dataset {
	return datasets.MustLoad(name, scale, seed)
}

// DatasetStream generates a dataset's target column chunk by chunk — a
// SeriesSource whose values are bit-identical to
// LoadDataset(...).Target().Values with O(chunk) steady-state memory (after
// a one-time cached calibration pass per configuration). Datasets
// registered without streaming support fall back to batch generation
// behind the same interface.
type DatasetStream = datasets.TargetStream

// StreamDataset returns a chunked generator for a dataset's target column.
// chunkSize ≤ 0 uses DefaultChunkSize.
func StreamDataset(name string, scale float64, seed int64, chunkSize int) (*DatasetStream, error) {
	return datasets.StreamTarget(name, scale, seed, chunkSize)
}

// DatasetSpec is the target statistics of a registered dataset (length,
// sampling interval, seasonal period, and Table 1 summary statistics).
type DatasetSpec = datasets.Spec

// DatasetRegistration declares an externally implemented dataset: its name,
// spec, and generator.
type DatasetRegistration = datasets.Registration

// UnknownDatasetError reports a dataset name no registration matches.
type UnknownDatasetError = datasets.UnknownDatasetError

// RegisterDataset adds a dataset to the global registry, so LoadDataset and
// the evaluation grid (EvalOptions.Datasets) accept it like a built-in. It
// panics on a duplicate name. Call it from an init function.
func RegisterDataset(r DatasetRegistration) { datasets.Register(r) }

// RegisteredDatasets lists every registered dataset name, sorted.
func RegisteredDatasets() []string { return datasets.Registered() }

// SyntheticSpec controls characteristic-adjustable synthetic data, the
// validation methodology the paper proposes as future work (§7).
type SyntheticSpec = datasets.SyntheticSpec

// DefaultSyntheticSpec is a balanced synthetic series.
func DefaultSyntheticSpec() SyntheticSpec { return datasets.DefaultSyntheticSpec() }

// SyntheticDataset generates a series with the spec's characteristics.
func SyntheticDataset(spec SyntheticSpec) (*Dataset, error) { return datasets.Synthetic(spec) }

// NewEnsemble blends member models with validation-error weights — the
// paper's §5 suggestion of pairing a strong forecaster with a resilient one
// (e.g. "Transformer" and "Arima").
func NewEnsemble(cfg ForecastConfig, members ...string) (Model, error) {
	return forecast.NewEnsemble(cfg, members...)
}

// Metrics and characteristics.
type (
	// Metrics bundles R, RSE, RMSE, and NRMSE (paper §3.5).
	Metrics = stats.Metrics
	// FeatureVector is a named characteristic vector (tsfeatures-style).
	FeatureVector = features.Vector
)

// Evaluate computes the paper's four metrics of predictions y against x.
func Evaluate(x, y []float64) (Metrics, error) { return stats.Evaluate(x, y) }

// TFE is the transformation forecasting error (paper Eq. 2).
func TFE(transformed, baseline float64) (float64, error) { return stats.TFE(transformed, baseline) }

// ExtractFeatures computes the 40+ time series characteristics the paper
// analyses, with the given dominant seasonal period.
func ExtractFeatures(values []float64, period int) (FeatureVector, error) {
	return features.Extract(values, features.Options{Period: period})
}

// DriftReport summarises key-characteristic drift between raw and
// decompressed data with the paper's §4.3.3 alert thresholds.
type DriftReport = features.DriftReport

// CheckDrift compares the paper's five key monitoring indicators between a
// raw series and its decompressed counterpart.
func CheckDrift(raw, decompressed []float64, period int) (*DriftReport, error) {
	return features.CheckDrift(raw, decompressed, period)
}

// Evaluation harness (Algorithm 1 and the experiment grid).
type (
	// EvalOptions configures a full evaluation run. Its Parallelism field
	// bounds the harness's worker pools (0 = NumCPU, 1 = sequential);
	// results are bit-identical at every setting. Its Stream field runs the
	// ingest→compress→reconstruct stages through the chunked streaming data
	// plane (ChunkSize points at a time) — also bit-identical. Its Store
	// field names a cell-addressed result store: every finished cell is
	// checkpointed there, an interrupted run resumes where it stopped, and
	// a grown grid recomputes only its delta — again bit-identical, so none
	// of these fields participate in grid memoisation.
	EvalOptions = core.Options
	// GridResult is the memoised output of the full evaluation grid.
	GridResult = core.GridResult
	// GridProvenance records how a GridResult came to be — computed, loaded
	// from a store, or a resumed mix — with the cell counts of each, so
	// consumers never misread a loaded grid's zero timings as a measurement.
	GridProvenance = core.Provenance
	// GridStoreInfo summarises a result store file (InspectGridStore).
	GridStoreInfo = core.StoreInfo
	// ReportTable is an aligned text table produced by the experiments.
	ReportTable = core.Table
)

// DefaultEvalOptions is the paper's grid at laptop scale.
func DefaultEvalOptions() EvalOptions { return core.DefaultOptions() }

// PaperEvalOptions is the full-scale configuration of §3 (long runtime).
func PaperEvalOptions() EvalOptions { return core.PaperOptions() }

// RunGrid executes (and memoises) the paper's evaluation scenario.
// Datasets and (model, seed) training units are evaluated concurrently up
// to opts.Parallelism workers, with per-cell transforms cached and results
// merged in a fixed order, so the output is deterministic and bit-identical
// to a sequential run. GridResult.Timings reports per-phase wall clock.
func RunGrid(opts EvalOptions) (*GridResult, error) { return core.RunGrid(opts) }

// RunGridContext is RunGrid under a cancellation context: the engine checks
// ctx at stage, grid-cell, and training-epoch boundaries, returns ctx.Err()
// promptly once cancelled, and never memoises a partial result.
func RunGridContext(ctx context.Context, opts EvalOptions) (*GridResult, error) {
	return core.RunGridContext(ctx, opts)
}

// ResetGridCache clears RunGrid's in-process memoisation cache, forcing the
// next call to recompute (test and benchmark hook).
func ResetGridCache() { core.ResetGridCache() }

// SaveGrid persists an evaluation grid as a cell-addressed result store —
// one compressed record per grid cell, reconstructions encoded with the
// repo's lossless Gorilla codec — so expensive runs can be reused across
// processes. Saving the same grid twice produces byte-identical files.
func SaveGrid(g *GridResult, path string) error { return core.SaveGrid(g, path) }

// LoadGrid reads a saved grid — a store written by SaveGrid, a finished
// checkpoint store from EvalOptions.Store, or a legacy gzip-JSON grid
// file — and registers it in the in-process cache. The loaded grid's
// Provenance says where its cells came from.
func LoadGrid(path string) (*GridResult, error) { return core.LoadGrid(path) }

// InspectGridStore summarises a result store file without assembling the
// grid: which option signatures it holds, cell counts per dataset, and
// whether it records a completed (loadable) run.
func InspectGridStore(path string) (GridStoreInfo, error) { return core.InspectStore(path) }

// Distributed work plane: the grid as a partitionable job. Workers share
// nothing but the filesystem — each runs one deterministic slice of the
// cell space against its own journal, and the journals merge into one
// canonical store byte-for-byte interchangeable with a single-process run's.
type (
	// GridWorkerSummary is a partition run's machine-readable provenance:
	// cells owned, stolen, computed, and loaded, plus wall clock.
	GridWorkerSummary = core.WorkerSummary
	// GridMergeStats summarises a MergeGridStores call (sources, records,
	// and any conflicting keys).
	GridMergeStats = cellstore.MergeStats
)

// RunGridPartition evaluates partition index of workers (0-based) of the
// grid opts describes, checkpointing into opts.Store (the worker's own
// journal; required). When peers lists sibling journals, the worker makes
// one steal pass after its slice drains, computing whatever no peer has
// claimed or checkpointed. Partitioning is deterministic: every process
// enumerating the same options computes the same split.
func RunGridPartition(opts EvalOptions, workers, index int, peers []string) (GridWorkerSummary, error) {
	return core.RunGridPartition(opts, workers, index, peers)
}

// MergeGridStores combines per-worker journals into one canonical store at
// dst and stamps it with the worker count, so the merged grid's Provenance
// reports "merged from N worker journals". Worker journals for the same
// option set hold bit-identical records for shared keys; any payload
// conflict is an error, not a silent overwrite.
func MergeGridStores(dst string, workers []string) (GridMergeStats, error) {
	return core.MergeWorkerStores(dst, workers)
}

// Recommendation is a concrete compression operating point.
type Recommendation = core.Recommendation

// Recommend returns the method and error bound with the highest CR whose
// mean TFE stays within maxTFE on the evaluated grid.
func Recommend(g *GridResult, dataset string, maxTFE float64, models []string) (Recommendation, error) {
	return core.Recommend(g, dataset, maxTFE, models)
}

// Impact prediction (the §5 research direction: predict TFE from
// compression characteristics without running a forecaster).
type (
	// ImpactObservation is one (compression outcome, TFE) instance.
	ImpactObservation = impact.Observation
	// ImpactPredictor predicts TFE from compression characteristics and
	// explains predictions with exact TreeSHAP.
	ImpactPredictor = impact.Predictor
)

// TrainImpactPredictor fits a TFE predictor on observations, e.g. those
// returned by ImpactObservationsFromGrid.
func TrainImpactPredictor(obs []ImpactObservation) (*ImpactPredictor, error) {
	return impact.Train(obs)
}

// ImpactObservationsFromGrid converts a completed evaluation grid into
// impact-predictor training data.
func ImpactObservationsFromGrid(g *GridResult) ([]ImpactObservation, error) {
	return impact.ObservationsFromGrid(g)
}

// Anomaly detection (the §5 "other analytics" direction).

// AnomalyDetector flags points whose seasonal residual exceeds a robust
// z-score threshold.
type AnomalyDetector = anomaly.Detector

// InjectSpikes adds n ground-truth spikes for detection studies.
func InjectSpikes(values []float64, n int, magnitude float64, seed int64) ([]float64, []int) {
	return anomaly.InjectSpikes(values, n, magnitude, seed)
}

// ScoreDetections compares detections to ground truth with a position
// tolerance and returns precision, recall, and F1.
func ScoreDetections(detected, truth []int, tolerance int) (precision, recall, f1 float64) {
	return anomaly.Score(detected, truth, tolerance)
}

// Online execution plane (cmd/tsmonitor is the daemon): a continuous,
// drift-aware monitoring session over a chunked stream — ingest → inject →
// compress → reconstruct → monitor → update → score — with per-tick
// checkpointing into a cell store, so a killed monitor resumes from its
// last complete tick and reproduces the uninterrupted run byte for byte.
type (
	// SessionOptions configures one monitoring session (dataset, lossy
	// channel, model, monitors, injection, checkpoint store).
	SessionOptions = core.SessionOptions
	// Session drives the online loop; Run streams, Replay re-executes the
	// same session offline from the batch-loaded dataset (byte-identical).
	Session = core.Session
	// SessionReport is a session's deterministic outcome: the alert event
	// log plus compression, forecast, drift-delay, and anomaly-F1 metrics.
	SessionReport = core.SessionReport
	// MonitorEvent is one alert or lifecycle event, stamped with the global
	// stream index at which it was detected.
	MonitorEvent = core.MonitorEvent
	// MonitorBenchResult is a merged (method × bound) session sweep — the
	// BENCH_monitor.json shape.
	MonitorBenchResult = core.MonitorBench
	// IncrementalModel is a forecaster that continues training from its
	// current weights as new data arrives (warm-start Fit + Update).
	IncrementalModel = forecast.IncrementalFitter
)

// NewSession validates opts and builds a monitoring session.
func NewSession(opts SessionOptions) (*Session, error) { return core.NewSession(opts) }

// MonitorSweep runs one session per (method, bound) pair — cells
// parallelise up to parallelism workers and merge in a fixed order, so the
// result is identical at every setting.
func MonitorSweep(ctx context.Context, opts SessionOptions, methods []Method, bounds []float64, parallelism int) (*MonitorBenchResult, error) {
	return core.MonitorSweep(ctx, opts, methods, bounds, parallelism)
}

// RegisterIncrementalModel is RegisterModel for models implementing
// IncrementalModel: it flags the registration so online sessions accept the
// model. Constructed models must actually implement IncrementalModel —
// NewSession checks at session construction.
func RegisterIncrementalModel(r ModelRegistration) {
	r.Incremental = true
	forecast.Register(r)
}

// IsIncrementalModel reports whether a registered model supports online
// updates (all seven built-ins do).
func IsIncrementalModel(name string) bool { return forecast.IsIncremental(name) }

// Serving plane: an embeddable HTTP server (cmd/tsserve is the daemon)
// exposing /v1/compress, /v1/decompress, /v1/forecast, and /v1/recommend.
// Request bodies stream through the chunked data plane under a per-request
// memory cap, computations are cancelled when clients disconnect, and
// results dedupe through a shared cell store behind a singleflight layer.
type (
	// ServeOptions configures an embedded Server.
	ServeOptions = serve.Options
	// ServeStats is a snapshot of a Server's request counters.
	ServeStats = serve.Stats
	// Server answers the /v1/ endpoints; mount Handler() on an http.Server.
	Server = serve.Server
)

// NewServer builds a serving-plane Server: it opens the durable cache store
// (single writer) and loads the optional grid store read-only.
func NewServer(opts ServeOptions) (*Server, error) { return serve.New(opts) }
